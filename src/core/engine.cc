#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/summation.h"
#include "tadoc/canonical.h"
#include "tadoc/epoch_counts.h"
#include "tadoc/head_tail.h"
#include "tadoc/windows.h"
#include "util/dram_tracker.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace ntadoc::core {

using compress::IsFileSep;
using compress::IsRule;
using compress::IsWord;
using compress::RuleIndex;
using compress::Symbol;
using compress::WordId;
using tadoc::CanonicalSort;
using tadoc::CanonicalTopK;
using tadoc::MergeSortedCounts;
using tadoc::NgramKeyHash;
using tadoc::RankPostings;
using tadoc::SortAndCombine;

namespace {

constexpr uint64_t kMarkerOffset = 0;
// Dual-slot marker region; the redo log (operation mode) or pool starts
// right after it.
constexpr uint64_t kMarkerRegion = nvm::PhaseMarker::kRegionSize;

/// Pool-resident entry of a bottom-up word list.
struct WordEntry {
  uint32_t word;
  uint32_t pad;
  uint64_t count;
};

/// Pool-resident entry of a gram list (local windows or merged).
struct GramEntry {
  NgramKey key;
  uint64_t count;
};

/// Descriptor of one growable pool list.
struct ListMeta {
  uint64_t off;
  uint64_t capacity;  // in entries
  uint64_t size;      // in entries
};

/// Descriptor of one immutable local-gram payload.
struct GramMeta {
  uint64_t off;
  uint64_t count;
};

/// Durable traversal cursor (operation-level persistence).
struct CursorSlot {
  uint64_t magic;
  uint64_t stage;  // 0 fresh, 1/2 strategy-specific, 3 done
  uint64_t a;
  uint64_t b;
  uint64_t checksum;
};
constexpr uint64_t kCursorMagic = 0x4E54414443435253ULL;  // "NTADCCRS"

uint64_t CursorChecksum(const CursorSlot& c) {
  return Fnv1a64(&c, offsetof(CursorSlot, checksum));
}

/// Pool catalog: every offset needed to re-attach after a restart.
struct Catalog {
  uint64_t magic;
  uint64_t signature;
  uint64_t rule_meta_off;
  uint64_t seg_meta_off;
  uint64_t queue_off;
  uint64_t indeg_off;
  uint64_t word_status, word_keys, word_vals, word_cap;
  uint64_t gram_status, gram_keys, gram_vals, gram_cap;
  uint64_t ftbl_status, ftbl_keys, ftbl_vals, ftbl_cap;
  uint64_t fgram_status, fgram_keys, fgram_vals, fgram_cap;
  uint64_t word_list_meta_off;
  uint64_t gram_list_meta_off;
  uint64_t local_gram_meta_off;
  uint64_t seg_gram_meta_off;
  uint64_t cursor_off;
  uint64_t integrity_off;
  uint64_t payload_begin, payload_end;  // pruned payload extent
  uint64_t gram_begin, gram_end;        // local-gram payload extent
  uint64_t pruned;
  uint64_t checksum;
};
constexpr uint64_t kCatalogMagic = 0x4E5441444343544CULL;  // "NTADCCTL"

uint64_t CatalogChecksum(const Catalog& c) {
  return Fnv1a64(&c, offsetof(Catalog, checksum));
}

/// Checksummed record of the init phase's immutable pool content: the
/// pool top at init completion and a hash of every byte in
/// [data_start, init_top) that the traversal phase never mutates.
/// Recovery recomputes the hash before trusting a re-attached init, so a
/// torn flush or bit rot in payloads/metadata cannot produce a silently
/// wrong answer.
struct InitIntegrity {
  uint64_t magic;
  uint64_t init_top;
  uint64_t region_hash;
  uint64_t checksum;  // over the preceding fields
};
constexpr uint64_t kIntegrityMagic = 0x4E54414443494E54ULL;  // "NTADCINT"

uint64_t IntegrityChecksum(const InitIntegrity& r) {
  return Fnv1a64(&r, offsetof(InitIntegrity, checksum));
}

/// Replicated critical metadata, kept in a reserved region at the device
/// tail (persistence != kNone): raw images of the phase-marker region and
/// the pool header, plus the catalog and init-integrity records,
/// checksummed as one unit. Attach fails over to this copy when a primary
/// is unreadable or corrupt and repairs the primary in place. Written
/// once per fresh init (after the phase-1 commit); the pool header image
/// may go stale when later remaps bump the header's count, but restoring
/// the older count only ignores spare copies whose home blocks the
/// emulated controller already healed.
struct MetaMirror {
  uint64_t magic;
  uint64_t signature;
  uint8_t marker[kMarkerRegion];                  // phase-marker image
  uint8_t pool_header[nvm::NvmPool::kHeaderSlot]; // pool-header image
  Catalog catalog;
  InitIntegrity integrity;
  uint64_t checksum;  // over the preceding fields
};
constexpr uint64_t kMetaMirrorMagic = 0x4E544144434D4952ULL;  // "NTADCMIR"
constexpr uint64_t kMirrorRegion = 1024;
static_assert(sizeof(MetaMirror) <= kMirrorRegion);

uint64_t MirrorChecksum(const MetaMirror& m) {
  return Fnv1a64(&m, offsetof(MetaMirror, checksum));
}

uint64_t MirrorOffset(const nvm::NvmDevice& device) {
  return device.capacity() - kMirrorRegion;
}

void WriteMetaMirror(nvm::NvmDevice* device, uint64_t signature,
                     uint64_t pool_base, const Catalog& cat,
                     const InitIntegrity& ii) {
  MetaMirror m{};
  m.magic = kMetaMirrorMagic;
  m.signature = signature;
  // Best effort on the raw images: an unreadable primary leaves zeros,
  // which the mirror's checksum still covers.
  (void)device->TryReadBytes(kMarkerOffset, m.marker, sizeof(m.marker));
  (void)device->TryReadBytes(pool_base, m.pool_header, sizeof(m.pool_header));
  m.catalog = cat;
  m.integrity = ii;
  m.checksum = MirrorChecksum(m);
  const uint64_t off = MirrorOffset(*device);
  device->WriteBytes(off, &m, sizeof(m));
  device->FlushRange(off, sizeof(m));
  device->Drain();
}

std::optional<MetaMirror> ReadMetaMirror(nvm::NvmDevice* device,
                                         uint64_t signature) {
  MetaMirror m;
  const uint64_t off = MirrorOffset(*device);
  if (!device->TryReadBytes(off, &m, sizeof(m)).ok()) return std::nullopt;
  if (m.magic != kMetaMirrorMagic || m.checksum != MirrorChecksum(m) ||
      m.signature != signature) {
    return std::nullopt;
  }
  return m;
}

/// Half-open byte extent on the device.
struct ByteRange {
  uint64_t begin;
  uint64_t end;
};

struct U32Hash {
  size_t operator()(uint32_t v) const { return Mix64(v); }
};

using WordTable = NvmHashTable<uint32_t, uint64_t, U32Hash>;
using GramTable = NvmHashTable<NgramKey, uint64_t, NgramKeyHash>;

/// Direct-or-transactional writer for traversal steps.
///
/// Three regimes, selected at construction:
///   * no log              — volatile/phase persistence: plain device
///     writes, no transactions;
///   * commit_interval 1   — strict libpmemobj-style operation
///     persistence: each step is one redo-log transaction
///     (Begin/Stage/Commit), bit-for-bit the historical per-step
///     protocol;
///   * commit_interval K>1 — epoch group commit: stores write through to
///     their home locations immediately (volatile) and are recorded
///     host-side; every K steps the records are coalesced — overlapping
///     or adjacent writes merged into one interval, so repeated updates
///     of the same counter collapse to one final-value record — and
///     staged into a single redo-log transaction. The epoch's durable
///     commit record is what makes the written-through home state
///     recoverable; a crash loses at most the open epoch, and recovery
///     resumes at the last committed epoch boundary. In-place bulk data
///     (bottom-up lists) is flush-deferred: its dirty 64 B lines are
///     collected per epoch, deduplicated, and flushed as contiguous runs
///     under one drain.
class StepWriter {
 public:
  StepWriter(nvm::NvmDevice* device, nvm::RedoLog* log,
             uint32_t commit_interval = 1, NTadocRunInfo* info = nullptr)
      : device_(device),
        log_(log),
        interval_(log != nullptr ? std::max<uint32_t>(1, commit_interval)
                                 : 1),
        info_(info) {}

  bool transactional() const { return log_ != nullptr; }
  bool epoch_mode() const { return interval_ > 1; }
  nvm::RedoLog* log() { return log_; }

  void Begin() {
    if (log_ == nullptr || epoch_mode()) return;  // epochs span steps
    log_->Begin();
  }

  void Write(uint64_t off, const void* data, uint32_t len) {
    if (log_ == nullptr) {
      device_->WriteBytes(off, data, len);
    } else if (!epoch_mode()) {
      log_->Stage(off, data, len);
    } else {
      // Write through now; the epoch's commit record restores the value
      // after a crash. Recording coalesces repeated/adjacent writes.
      device_->WriteBytes(off, data, len);
      Record(off, static_cast<const uint8_t*>(data), len);
    }
  }

  template <typename T>
  void WriteValue(uint64_t off, const T& v) {
    Write(off, &v, sizeof(T));
  }

  /// Epoch mode only: the caller wrote `len` in-place bytes at `off`
  /// (bulk data bypassing the log) and relies on this epoch's commit for
  /// their durability — the lines join the epoch's one batched flush.
  void DeferDataFlush(uint64_t off, uint64_t len) {
    if (len == 0) return;
    const uint64_t first = off / kLine;
    const uint64_t last = (off + len - 1) / kLine;
    for (uint64_t l = first; l <= last; ++l) deferred_lines_.push_back(l);
    line_events_ += last - first + 1;
  }

  /// Commits the step. K=1 commits the step's transaction; epoch mode
  /// counts the step and commits the whole epoch when it is full, when
  /// the coalesced records approach the log reserve, or when `force` is
  /// set (phase boundaries: the cursor must be durable before the phase
  /// marker advances past it).
  Status Commit(bool force = false) {
    if (log_ == nullptr) return Status::OK();
    if (!epoch_mode()) return log_->Commit();
    ++steps_;
    if (!force && steps_ < interval_ &&
        pending_encoded_ < log_->capacity_bytes() / 4) {
      return Status::OK();
    }
    return CommitEpoch();
  }

 private:
  static constexpr uint64_t kLine = nvm::PersistCheck::kLine;

  /// Coalesces [off, off+len) into the staged interval map: an interval
  /// fully containing the write is patched in place; otherwise every
  /// interval overlapping or adjacent to it is merged (newest bytes
  /// win). Intervals stay pairwise disjoint and non-adjacent.
  void Record(uint64_t off, const uint8_t* data, uint32_t len) {
    if (len == 0) return;
    ++writes_recorded_;
    const uint64_t end = off + len;
    line_events_ += (end - 1) / kLine - off / kLine + 1;
    auto it = staged_.upper_bound(off);
    if (it != staged_.begin()) {
      auto prev = std::prev(it);
      if (prev->first <= off && prev->first + prev->second.size() >= end) {
        std::copy(data, data + len,
                  prev->second.begin() + (off - prev->first));
        return;
      }
    }
    // Candidates start at most one interval before upper_bound(off);
    // everything they do not cover of [nb, ne) is covered by the new
    // write, so the merged buffer has no gaps.
    auto first = staged_.upper_bound(off);
    if (first != staged_.begin()) {
      auto prev = std::prev(first);
      if (prev->first + prev->second.size() >= off) first = prev;
    }
    auto last = first;
    uint64_t nb = off;
    uint64_t ne = end;
    while (last != staged_.end() && last->first <= end) {
      nb = std::min(nb, last->first);
      ne = std::max(ne, last->first + last->second.size());
      pending_encoded_ -= nvm::RedoLog::EncodedRecordBytes(
          static_cast<uint32_t>(last->second.size()));
      ++last;
    }
    std::vector<uint8_t> buf(ne - nb);
    for (auto i = first; i != last; ++i) {
      std::copy(i->second.begin(), i->second.end(),
                buf.begin() + (i->first - nb));
    }
    std::copy(data, data + len, buf.begin() + (off - nb));
    staged_.erase(first, last);
    pending_encoded_ +=
        nvm::RedoLog::EncodedRecordBytes(static_cast<uint32_t>(buf.size()));
    staged_.emplace(nb, std::move(buf));
  }

  /// Commits the accumulated epoch: flushes deferred in-place data under
  /// one drain, stages the coalesced records as one transaction, and
  /// publishes the durable commit record. The group checkpoint happens
  /// only here, immediately after a successful commit — home state is
  /// consistent exactly at epoch boundaries, so FlushAppliedHome can
  /// never leak an uncommitted write-through value to durable home.
  Status CommitEpoch() {
    steps_ = 0;
    if (staged_.empty() && deferred_lines_.empty()) return Status::OK();

    // 1. Deferred data first: the commit record publishes metadata that
    // points at it, so the data must be durable before the record is.
    std::vector<uint64_t> deferred;
    deferred.swap(deferred_lines_);
    std::sort(deferred.begin(), deferred.end());
    deferred.erase(std::unique(deferred.begin(), deferred.end()),
                   deferred.end());
    uint64_t flushed_now = 0;
    if (!deferred.empty()) {
      std::vector<uint64_t> runs = deferred;  // FlushLineRuns consumes
      flushed_now = device_->FlushLineRuns(runs);
      // Those lines are clean now; no later checkpoint may re-flush
      // them (including stale entries from earlier epochs).
      log_->NoteHomeLinesFlushed(deferred);
    }
    if (staged_.empty()) {
      if (info_ != nullptr) {
        info_->coalesced_flush_lines += line_events_ - flushed_now;
      }
      DropEpoch();
      return Status::OK();
    }

    // 2. One transaction for the epoch's coalesced records.
    log_->Begin();
    std::vector<uint64_t> home_lines;
    for (const auto& [off, buf] : staged_) {
      log_->Stage(off, buf.data(), static_cast<uint32_t>(buf.size()));
      for (uint64_t l = off / kLine; l <= (off + buf.size() - 1) / kLine;
           ++l) {
        home_lines.push_back(l);
      }
    }
    std::sort(home_lines.begin(), home_lines.end());
    home_lines.erase(std::unique(home_lines.begin(), home_lines.end()),
                     home_lines.end());
    if (!deferred.empty()) {
      // Lines the deferred flush above already made durable stay out of
      // the checkpoint set (list data packs against its descriptor
      // array, so sharing a 64 B line is routine).
      std::vector<uint64_t> kept;
      kept.reserve(home_lines.size());
      std::set_difference(home_lines.begin(), home_lines.end(),
                          deferred.begin(), deferred.end(),
                          std::back_inserter(kept));
      home_lines = std::move(kept);
    }
    const uint64_t home_kept = home_lines.size();
    Status s = log_->CommitApplied(std::move(home_lines));
    if (!s.ok()) {
      if (s.code() == StatusCode::kResourceExhausted) {
        // The per-step protocol checkpoints and retries here, but a
        // mid-epoch FlushAppliedHome would flush home lines carrying
        // uncommitted write-through values — leaked durable state that
        // recovery would then double-apply. The reserve policy (early
        // commit at capacity/4, checkpoint above capacity/2) makes this
        // reachable only when a single step outgrows the reserve, so
        // fail honestly instead.
        log_->Abort();
        s = Status::InvalidArgument(
            "epoch exceeds redo log reserve: increase redo_log_bytes or "
            "lower commit_interval");
      }
      DropEpoch();
      return s;
    }
    if (info_ != nullptr) {
      ++info_->epoch_commits;
      info_->coalesced_records += writes_recorded_ - staged_.size();
      info_->coalesced_flush_lines +=
          line_events_ - (flushed_now + home_kept);
    }
    DropEpoch();

    // 3. Clean-boundary group checkpoint, deferred until the remaining
    // reserve could no longer absorb a worst-case epoch (the early-commit
    // threshold above): checkpointing re-flushes every home line dirtied
    // since the last one, so eagerness directly multiplies line flushes.
    if (log_->used_bytes() > log_->capacity_bytes() -
                                 log_->capacity_bytes() / 4) {
      log_->FlushAppliedHome();
      log_->Truncate();
    }
    return Status::OK();
  }

  void DropEpoch() {
    staged_.clear();
    deferred_lines_.clear();
    pending_encoded_ = 0;
    writes_recorded_ = 0;
    line_events_ = 0;
  }

  nvm::NvmDevice* device_;
  nvm::RedoLog* log_;
  uint32_t interval_;
  NTadocRunInfo* info_;
  uint32_t steps_ = 0;  // steps since the last epoch commit
  // off -> bytes; pairwise disjoint, non-adjacent coalesced intervals.
  std::map<uint64_t, std::vector<uint8_t>> staged_;
  uint64_t pending_encoded_ = 0;  // Σ EncodedRecordBytes over staged_
  uint64_t writes_recorded_ = 0;  // Write() calls this epoch
  uint64_t line_events_ = 0;      // line flushes the strict path would pay
  std::vector<uint64_t> deferred_lines_;
};


/// No-summation ablation: rebuilds a full table into a doubled
/// allocation, paying the redundant NVM reads/writes Algorithm 2 avoids.
template <typename Table>
Status GrowTable(Table* table, nvm::NvmPool* pool, uint64_t* rebuilds) {
  NTADOC_ASSIGN_OR_RETURN(Table bigger,
                          Table::Create(pool, table->capacity()));
  NTADOC_RETURN_IF_ERROR(table->RebuildInto(&bigger));
  *table = bigger;
  ++*rebuilds;
  return Status::OK();
}

/// Writes one bottom-up list to its pool allocation. With summation the
/// bound always holds and the list is written once, sequentially; in the
/// ablation the list is appended incrementally with allocate-copy-grow
/// reconstructions on overflow.
template <typename Entry, typename Vec>
Status WriteList(NvmVector<ListMeta>* metas, nvm::NvmPool* pool,
                 nvm::NvmDevice* device, uint32_t r, const Vec& acc,
                 StepWriter* writer, bool summation, uint64_t* rebuilds) {
  auto make_entry = [](const auto& kv) {
    if constexpr (std::is_same_v<Entry, WordEntry>) {
      return WordEntry{kv.first, 0, kv.second};
    } else {
      return GramEntry{kv.first, kv.second};
    }
  };
  ListMeta m = metas->Get(r);
  if (acc.size() <= m.capacity) {
    std::vector<Entry> buf;
    buf.reserve(acc.size());
    for (const auto& kv : acc) buf.push_back(make_entry(kv));
    if (!buf.empty()) {
      device->WriteBytes(m.off, buf.data(), buf.size() * sizeof(Entry));
      if (writer->epoch_mode()) {
        // List data bypasses the redo log (large objects are written in
        // place); epoch mode defers its durability to the epoch commit,
        // where all deferred lines share one deduplicated flush + drain.
        writer->DeferDataFlush(m.off, buf.size() * sizeof(Entry));
      } else if (writer->transactional()) {
        // List data bypasses the redo log (large objects are written in
        // place); it must be durable before the meta/cursor commit.
        device->FlushRange(m.off, buf.size() * sizeof(Entry));
        device->Drain();
      }
    }
  } else {
    if (summation) {
      return Status::Internal("bottom-up summation bound violated for R" +
                              std::to_string(r));
    }
    uint64_t cap = m.capacity;
    uint64_t off = m.off;
    if (cap == 0) {
      cap = 8;
      NTADOC_ASSIGN_OR_RETURN(off, pool->AllocArray<Entry>(cap));
    }
    uint64_t written = 0;
    std::vector<Entry> tmp;
    for (const auto& kv : acc) {
      if (written == cap) {
        const uint64_t new_cap = cap * 2;
        NTADOC_ASSIGN_OR_RETURN(const nvm::PoolOffset new_off,
                                pool->AllocArray<Entry>(new_cap));
        tmp.resize(written);
        device->ReadBytes(off, tmp.data(), written * sizeof(Entry));
        device->WriteBytes(new_off, tmp.data(), written * sizeof(Entry));
        off = new_off;
        cap = new_cap;
        ++*rebuilds;
      }
      const Entry e = make_entry(kv);
      device->WriteBytes(off + written * sizeof(Entry), &e, sizeof(Entry));
      ++written;
    }
    if (writer->transactional() && written > 0) {
      device->FlushRange(off, written * sizeof(Entry));
      device->Drain();
    }
    m.off = off;
    m.capacity = cap;
  }
  m.size = acc.size();
  writer->WriteValue(metas->ElementOffset(r), m);
  return Status::OK();
}

/// Combines duplicate (id, freq) pairs (needed when pruning is disabled).
void CombineEntries(std::vector<std::pair<uint32_t, uint32_t>>* v) {
  std::sort(v->begin(), v->end());
  size_t out = 0;
  for (size_t i = 0; i < v->size();) {
    size_t j = i;
    uint64_t total = 0;
    while (j < v->size() && (*v)[j].first == (*v)[i].first) {
      total += (*v)[j].second;
      ++j;
    }
    (*v)[out++] = {(*v)[i].first, static_cast<uint32_t>(total)};
    i = j;
  }
  v->resize(out);
}

}  // namespace

const char* PersistenceModeToString(PersistenceMode m) {
  switch (m) {
    case PersistenceMode::kNone:
      return "none";
    case PersistenceMode::kPhase:
      return "phase-level";
    case PersistenceMode::kOperation:
      return "operation-level";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

struct NTadocEngine::State {
  Task task = Task::kWordCount;
  AnalyticsOptions opts;
  TraversalStrategy strategy = TraversalStrategy::kTopDown;
  uint64_t signature = 0;

  std::optional<nvm::NvmPool> pool;
  std::optional<nvm::RedoLog> log;

  PrunedDag dag;
  NvmVector<uint32_t> queue;
  NvmVector<uint32_t> indeg;
  WordTable word_table;       // global word counts
  GramTable gram_table;       // global gram counts
  WordTable file_table;       // shared per-file word counts
  GramTable file_gram_table;  // shared per-file gram counts
  NvmVector<ListMeta> word_list_meta;
  NvmVector<ListMeta> gram_list_meta;
  NvmVector<GramMeta> local_gram_meta;
  NvmVector<GramMeta> seg_gram_meta;
  uint64_t cursor_off = 0;
  uint64_t integrity_off = 0;
  // Device extent of the local-gram payloads (between the gram meta
  // arrays and the traversal structures); scoped salvage re-derives
  // damaged blocks inside it from the grammar.
  uint64_t gram_begin = 0;
  uint64_t gram_end = 0;

  // Volatile traversal state (mirrored into the cursor in op mode).
  uint64_t qhead = 0;
  uint64_t qtail = 0;

  // Pending table mutations of the current transaction.
  WordTable::Pending word_pending;
  GramTable::Pending gram_pending;

  // Whether the traversal phase wrote any RuleMeta weight (a fresh run
  // over an edge-free grammar never does); gates the phase-end flush of
  // the metadata array.
  bool rule_meta_dirty = false;

  // Which structures this task uses.
  bool use_queue = false;
  bool use_word_table = false;
  bool use_gram_table = false;
  bool use_file_table = false;
  bool use_file_gram_table = false;
  bool use_word_lists = false;
  bool use_gram_lists = false;
  bool use_local_grams = false;

  nvm::RedoLog* tx_log() { return log ? &*log : nullptr; }
};

// ---------------------------------------------------------------------------
// Decoded-rule DRAM cache
// ---------------------------------------------------------------------------

/// Bounded LRU cache of decoded payloads (options.dram_cache_bytes). The
/// pool payloads are immutable after init, so a decoded copy can be
/// reused for the whole traversal; a hit replays the payload's device
/// extents against a DRAM cost model that shares the looking-up run's
/// SimClock, so the simulated run still pays (cheap DRAM) access costs
/// rather than getting the data for free. A private cache is cleared at
/// every InitPhase entry (a fresh init or salvage rewrites the pool under
/// the cached offsets); a SharedRuleCache survives across sessions over
/// one sealed pool — deterministic init makes the offsets stable — and is
/// explicitly invalidated whenever any session repairs or salvages.
struct NTadocEngine::RuleCache {
  struct Entry {
    DecodedPayload payload;
    PayloadExtent extent;
    uint64_t bytes = 0;  // host-memory estimate for the budget
    std::list<uint64_t>::iterator lru_it;
  };

  explicit RuleCache(uint64_t budget_bytes) : budget(budget_bytes) {}

  static uint64_t KeyOf(bool segment, uint32_t id) {
    return (segment ? (1ull << 32) : 0) | id;
  }

  static uint64_t PayloadBytes(const DecodedPayload& p) {
    return sizeof(Entry) +
           (p.subrules.capacity() + p.words.capacity()) *
               sizeof(std::pair<uint32_t, uint32_t>);
  }

  /// Returns the cached payload or null; charges `dram` — the caller's
  /// per-session DRAM model, so a hit on a shared cache lands on the
  /// lane of the session that performed the lookup — for the extents
  /// the device read would have touched.
  const DecodedPayload* Lookup(bool segment, uint32_t id,
                               nvm::MemoryModel* dram) {
    auto it = map.find(KeyOf(segment, id));
    if (it == map.end()) return nullptr;
    lru.splice(lru.begin(), lru, it->second.lru_it);
    const PayloadExtent& e = it->second.extent;
    dram->TouchRead(e.meta_off, e.meta_len);
    if (e.payload_len > 0) dram->TouchReadExtent(e.payload_off, e.payload_len);
    return &it->second.payload;
  }

  /// Admission policy. Caching is only a win when BOTH hold:
  ///   (a) the payload is re-read — the second miss proves reuse, so
  ///       single-use rules (read once to build the estimator, once to
  ///       traverse) never displace anything; and
  ///   (b) a DRAM replay is actually cheaper than what the device just
  ///       charged for this decode: a warm device buffer often re-reads
  ///       a payload for less than the worst-case DRAM line replay a hit
  ///       would charge, in which case caching *slows the run down*.
  /// The measured cost of the current miss captures the device buffer's
  /// real behavior; the replay side is a worst-case (all-miss) estimate.
  /// The 2x margin covers the other direction of error: one expensive
  /// miss does not mean future re-reads stay expensive (the device
  /// buffer may have warmed by then), so a payload is admitted only when
  /// replaying it from DRAM wins even if re-reads turn out to cost half
  /// of what this miss did.
  bool ShouldAdmit(bool segment, uint32_t id, const PayloadExtent& e,
                   uint64_t measured_device_ns) {
    if (seen_once.insert(KeyOf(segment, id)).second) return false;
    const nvm::DeviceProfile p = nvm::DramProfile();
    auto blocks = [&p](uint64_t len) {
      return (len + p.block_size - 1) / p.block_size;
    };
    uint64_t replay = blocks(e.meta_len) * p.read_miss_ns;
    if (e.payload_len > 0) replay += blocks(e.payload_len) * p.read_miss_ns;
    return measured_device_ns > 2 * replay;
  }

  void Insert(bool segment, uint32_t id, const DecodedPayload& payload,
              const PayloadExtent& extent) {
    const uint64_t bytes = PayloadBytes(payload);
    if (bytes > budget) return;  // would evict everything for one entry
    while (used + bytes > budget && !lru.empty()) {
      auto victim = map.find(lru.back());
      used -= victim->second.bytes;
      map.erase(victim);
      lru.pop_back();
    }
    lru.push_front(KeyOf(segment, id));
    Entry e{payload, extent, bytes, lru.begin()};
    map.emplace(KeyOf(segment, id), std::move(e));
    used += bytes;
  }

  void Clear() {
    map.clear();
    lru.clear();
    seen_once.clear();
    used = 0;
  }

  uint64_t budget;
  uint64_t used = 0;
  std::list<uint64_t> lru;  // front = most recently used key
  std::unordered_map<uint64_t, Entry> map;
  std::unordered_set<uint64_t> seen_once;  // keys missed at least once
};

// ---------------------------------------------------------------------------
// RunBatch shared init state
// ---------------------------------------------------------------------------

/// What one full initialization leaves behind that every later task in the
/// same batch can reuse: the pool prefix holding the catalog slot and the
/// pruned DAG (immutable after init — traversals reset rule weights before
/// reading them), and the host-side estimator scratch whose derivation is
/// task-independent (it depends only on the grammar and the pruning
/// setting). Later tasks roll the pool's bump pointer back to `dag_top`
/// and re-allocate only their own tables/lists/cursor. When the first
/// sequence task lays its local n-gram lists directly after the DAG, the
/// reusable prefix extends to `gram_top` for later sequence tasks with the
/// same n — a non-sequence task in between allocates over that region and
/// invalidates it.
struct NTadocEngine::BatchShared {
  bool valid = false;
  uint64_t pool_base = 0;
  uint64_t catalog_off = 0;
  uint64_t dag_top = 0;  // pool top right after BuildPrunedDag
  PrunedDag dag;         // NvmVector handles are re-attached on reuse
  PruneStats prune;
  // Simulated cost the full init paid for the shared portion (container
  // load + DAG build + estimator reads); reusing tasks report it as
  // RunMetrics::shared_init_sim_ns without paying it again.
  uint64_t shared_sim_ns = 0;
  uint64_t gram_sim_ns = 0;  // extra cost of the gram-region extension

  // Task-independent estimator scratch (Algorithm 2 inputs/outputs).
  DagChildren children;
  std::vector<uint64_t> own_words;
  std::vector<uint64_t> own_len;
  std::vector<uint64_t> explen;
  std::vector<uint64_t> word_ub;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> seg_children;
  std::vector<uint64_t> seg_explen;
  std::vector<uint64_t> seg_word_ub;
  std::vector<uint64_t> seg_own_distinct;  // distinct own words per segment

  // Local n-gram prefix extension (valid only until a non-sequence task
  // allocates over it).
  bool gram_valid = false;
  uint32_t gram_ngram = 0;
  uint64_t gram_top = 0;  // pool top right after the gram payloads
  uint64_t local_gram_meta_off = 0;
  uint64_t seg_gram_meta_off = 0;
  uint64_t gram_begin = 0;
  uint64_t gram_end = 0;
  std::vector<uint64_t> gram_ub;

  void Invalidate() {
    valid = false;
    gram_valid = false;
  }
};

// ---------------------------------------------------------------------------
// Per-session mutable state
// ---------------------------------------------------------------------------

/// Everything one run/serving session mutates. The engine object itself
/// holds only the immutable wiring (corpus, device, options); pulling the
/// traversal cursors, counters, degraded/repair flags and cache handles
/// into one struct is what lets N snapshot-isolated sessions coexist over
/// one sealed pool with zero cross-session state bleed — each session is
/// one engine instance with its own SessionContext.
struct NTadocEngine::SessionContext {
  NTadocRunInfo run_info;
  uint64_t media_errors_seen = 0;
  bool degraded = false;
  uint64_t degraded_events = 0;

  // Absolute lane-clock deadline (0 = none), armed at Run() entry from
  // options.deadline_sim_ns, and checked at every cooperative cancel
  // point (traversal steps, estimator loops).
  uint64_t deadline_ns = 0;

  std::unique_ptr<State> state;
  std::unique_ptr<RuleCache> rule_cache;  // private per-session cache
  std::unique_ptr<BatchShared> batch_shared;

  // DRAM replay model for decoded-rule cache hits. Charges this session's
  // clock lane even when the hit came from a SharedRuleCache.
  std::optional<nvm::MemoryModel> cache_dram;

  // Satellite (b): init cost this run consumed from a shared prefix
  // without paying it (RunBatch reuse / sealed prefix).
  uint64_t shared_init_sim_ns = 0;
  bool init_shared = false;

  // Tiered placement (options.tiering != nullptr). Owned by the session
  // so heat and placement survive across Runs on one engine; attached to
  // the device as its charge router for the engine's lifetime.
  std::unique_ptr<nvm::TieredPool> tiered;
};

DecodedPayload NTadocEngine::ReadPayloadCached(State* st, bool segment,
                                               uint32_t id) {
  SharedRuleCache* shared = options_.shared_cache.get();
  RuleCache* cache =
      shared ? shared->cache_.get() : ses_->rule_cache.get();
  if (!cache || !ses_->cache_dram) {
    return segment ? ReadSegmentPayload(st->dag, &*st->pool, id)
                   : ReadRulePayload(st->dag, &*st->pool, id);
  }
  if (shared) {
    // Lookup under the cache lock; the DRAM replay charges this
    // session's model (its own clock lane), never a sibling's.
    util::MutexLock lock(&shared->mu_);
    if (const DecodedPayload* hit =
            cache->Lookup(segment, id, &*ses_->cache_dram)) {
      ++ses_->run_info.rule_cache_hits;
      return *hit;  // copied into the return value before unlock
    }
  } else if (const DecodedPayload* hit =
                 cache->Lookup(segment, id, &*ses_->cache_dram)) {
    ++ses_->run_info.rule_cache_hits;
    return *hit;
  }
  ++ses_->run_info.rule_cache_misses;
  PayloadExtent extent;
  const uint64_t decode_t0 = device_->clock().NowNanos();
  DecodedPayload payload =
      segment ? ReadSegmentPayload(st->dag, &*st->pool, id, &extent)
              : ReadRulePayload(st->dag, &*st->pool, id, &extent);
  const uint64_t decode_ns = device_->clock().NowNanos() - decode_t0;
  // Never cache a payload read through an unreadable block: the decode
  // came back empty with the media error counter bumped, and the caller
  // is about to salvage.
  if (device_->media_error_count() != ses_->media_errors_seen) return payload;
  if (shared) {
    util::MutexLock lock(&shared->mu_);
    if (cache->ShouldAdmit(segment, id, extent, decode_ns)) {
      cache->Insert(segment, id, payload, extent);
    }
  } else if (cache->ShouldAdmit(segment, id, extent, decode_ns)) {
    cache->Insert(segment, id, payload, extent);
  }
  return payload;
}

namespace {

/// Phase-level persistence at the end of the traversal phase: flush only
/// the traversal-phase data (weights, working arrays, counters, lists) —
/// the init-phase data was persisted at the init boundary already.
template <typename StateT>
void PersistTraversalState(nvm::NvmDevice* device, StateT* st) {
  const uint32_t nr = st->dag.num_rules;
  // All device reads happen before the first clwb: the list loops read
  // each descriptor, and pool allocations pack tightly enough that a
  // descriptor array can share its last cache line with adjacent list
  // data — reading that line between its clwb and the fence would
  // observe a value that is not yet guaranteed durable. Every extent is
  // collected as line numbers first and flushed as deduplicated
  // contiguous runs, so a line shared by adjacent structures (two lists,
  // a queue next to its in-degree array, a table's status buffer next to
  // its keys) is never clwb'd twice per fence.
  std::vector<uint64_t> lines;
  auto collect = [&lines](uint64_t off, uint64_t len) {
    if (len == 0) return;
    for (uint64_t l = off / nvm::PersistCheck::kLine;
         l <= (off + len - 1) / nvm::PersistCheck::kLine; ++l) {
      lines.push_back(l);
    }
  };
  // Descriptor arrays are read as one borrowed span (charged exactly like
  // the per-descriptor loop it replaces). An unreadable descriptor block
  // skips the list-data lines: the old path would have collected garbage
  // extents from poisoned descriptors, so nothing durable is lost.
  auto collect_lists = [&](const NvmVector<ListMeta>& metas,
                           uint64_t entry_size) {
    if (auto span = metas.ReadSpan(0, nr); span.ok()) {
      const ListMeta* m = *span;
      for (uint32_t r = 0; r < nr; ++r) {
        if (m[r].size > 0) collect(m[r].off, m[r].size * entry_size);
      }
    }
    collect(metas.offset(), nr * sizeof(ListMeta));
  };
  if (st->use_word_lists) {
    collect_lists(st->word_list_meta, sizeof(WordEntry));
  }
  if (st->use_gram_lists) {
    collect_lists(st->gram_list_meta, sizeof(GramEntry));
  }
  // Only top-down traversals propagate weights into RuleMeta, and a
  // traversal of an edge-free grammar over a fresh device never touches
  // them at all (the stage-0 reset skips weights that are already zero),
  // so the flush is further gated on a weight actually being written.
  if (st->strategy != TraversalStrategy::kBottomUp && st->rule_meta_dirty) {
    collect(st->dag.rule_meta.offset(), nr * sizeof(RuleMeta));
  }
  if (st->use_queue) {
    collect(st->indeg.offset(), nr * sizeof(uint32_t));
    collect(st->queue.offset(), nr * sizeof(uint32_t));
  }
  // A table's status buffer is always dirtied by the stage-0 Clear(),
  // but its key/value buffers are only written on insert — an empty
  // table's keys and values are clean.
  auto collect_table = [&](const auto& t, auto key_tag, auto val_tag) {
    collect(t.status_offset(), t.capacity());
    if (t.size() > 0) {
      collect(t.keys_offset(), t.capacity() * sizeof(decltype(key_tag)));
      collect(t.values_offset(), t.capacity() * sizeof(decltype(val_tag)));
    }
  };
  if (st->use_word_table) {
    collect_table(st->word_table, uint32_t{}, uint64_t{});
  }
  if (st->use_gram_table) {
    collect_table(st->gram_table, NgramKey{}, uint64_t{});
  }
  if (st->use_file_table) {
    collect_table(st->file_table, uint32_t{}, uint64_t{});
  }
  if (st->use_file_gram_table) {
    collect_table(st->file_gram_table, NgramKey{}, uint64_t{});
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (size_t i = 0; i < lines.size();) {
    size_t j = i + 1;
    while (j < lines.size() && lines[j] == lines[j - 1] + 1) ++j;
    device->FlushRange(lines[i] * nvm::PersistCheck::kLine,
                       (j - i) * nvm::PersistCheck::kLine);
    i = j;
  }
  device->Drain();
  for (size_t i = 0; i < lines.size();) {
    size_t j = i + 1;
    while (j < lines.size() && lines[j] == lines[j - 1] + 1) ++j;
    device->AssertPersisted(lines[i] * nvm::PersistCheck::kLine,
                            (j - i) * nvm::PersistCheck::kLine);
    i = j;
  }
}

/// Commits a step transaction; on a full log performs the group
/// checkpoint and retries. The home flush is required for correctness:
/// Commit() applies entries to their home locations WITHOUT flushing
/// (the log guarantees durability), so home state must be made durable
/// before the records that cover it are truncated. The log tracks
/// exactly which home lines its applied entries dirtied, so the
/// checkpoint flushes those and nothing else — the former wholesale
/// PersistTraversalState here clwb'd mostly clean lines (in-place list
/// data is already flushed at its write site, and the cursor is staged
/// through the log).
template <typename StateT, typename Writer>
Status CommitWithCheckpoint(nvm::NvmDevice* device, StateT* st,
                            Writer* writer, bool force = false) {
  (void)device;
  Status s = writer->Commit(force);
  if (s.code() != StatusCode::kResourceExhausted) return s;
  // Only the strict per-step protocol reaches this retry: epoch commits
  // handle their reserve internally (a mid-epoch checkpoint would leak
  // uncommitted write-through state) and never return ResourceExhausted.
  if (st->log) {
    st->log->FlushAppliedHome();
    st->log->Truncate();
  }
  return writer->Commit(force);
}

/// Byte extents of pool state that legitimately mutates during the
/// traversal phase; everything else between the pool's data start and the
/// init-time top is immutable after init and covered by the integrity
/// hash. Metadata arrays are excluded field-wise: only RuleMeta::weight
/// and ListMeta::size change under the summation estimator, so a torn
/// flush in any other field is caught.
template <typename StateT>
std::vector<ByteRange> CollectMutableExtents(const StateT& st,
                                             uint64_t integrity_off) {
  std::vector<ByteRange> v;
  auto add = [&v](uint64_t off, uint64_t len) {
    if (len > 0) v.push_back(ByteRange{off, off + len});
  };
  const uint32_t nr = st.dag.num_rules;
  for (uint32_t r = 0; r < nr; ++r) {
    add(st.dag.rule_meta.ElementOffset(r) + offsetof(RuleMeta, weight),
        sizeof(uint64_t));
  }
  if (st.use_queue) {
    add(st.queue.offset(), nr * sizeof(uint32_t));
    add(st.indeg.offset(), nr * sizeof(uint32_t));
  }
  auto add_table = [&](const auto& t, uint64_t key_size, uint64_t val_size) {
    add(t.status_offset(), t.capacity());
    add(t.keys_offset(), t.capacity() * key_size);
    add(t.values_offset(), t.capacity() * val_size);
  };
  if (st.use_word_table) {
    add_table(st.word_table, sizeof(uint32_t), sizeof(uint64_t));
  }
  if (st.use_gram_table) {
    add_table(st.gram_table, sizeof(NgramKey), sizeof(uint64_t));
  }
  if (st.use_file_table) {
    add_table(st.file_table, sizeof(uint32_t), sizeof(uint64_t));
  }
  if (st.use_file_gram_table) {
    add_table(st.file_gram_table, sizeof(NgramKey), sizeof(uint64_t));
  }
  // One borrowed span over the descriptor array (same charging as the
  // per-descriptor loop). On unreadable media no extents are excluded;
  // the integrity hash then mismatches, which is the right outcome for a
  // region that cannot even be read.
  auto add_lists = [&](const NvmVector<ListMeta>& metas,
                       uint64_t entry_size) {
    auto span = metas.ReadSpan(0, nr);
    if (!span.ok()) return;
    const ListMeta* m = *span;
    for (uint32_t r = 0; r < nr; ++r) {
      add(m[r].off, m[r].capacity * entry_size);
      add(metas.ElementOffset(r) + offsetof(ListMeta, size),
          sizeof(uint64_t));
    }
  };
  if (st.use_word_lists) add_lists(st.word_list_meta, sizeof(WordEntry));
  if (st.use_gram_lists) add_lists(st.gram_list_meta, sizeof(GramEntry));
  add(st.cursor_off, 64);
  add(integrity_off, 64);
  return v;
}

/// Hashes [begin, end) minus the excluded extents. Each gap is borrowed
/// zero-copy in one span (quantum 4096 keeps the cost identical to the
/// 4096-byte staging loop this replaces) so an unreadable media block
/// surfaces as DataLoss rather than being hashed as poison.
Result<uint64_t> HashImmutableRegion(nvm::NvmDevice* device, uint64_t begin,
                                     uint64_t end,
                                     std::vector<ByteRange> excluded) {
  std::sort(excluded.begin(), excluded.end(),
            [](const ByteRange& a, const ByteRange& b) {
              return a.begin < b.begin;
            });
  uint64_t h = Fnv1a64(&begin, sizeof(begin));
  auto hash_span = [&](uint64_t a, uint64_t b) -> Status {
    if (a >= b) return Status::OK();
    NTADOC_ASSIGN_OR_RETURN(
        const uint8_t* p,
        device->TryReadSpan(a, b - a, /*quantum=*/4096));
    h = Fnv1a64(p, b - a, h);
    return Status::OK();
  };
  uint64_t pos = begin;
  for (const ByteRange& e : excluded) {
    if (pos >= end) break;
    const uint64_t gap_end = std::max(pos, std::min(e.begin, end));
    NTADOC_RETURN_IF_ERROR(hash_span(pos, gap_end));
    pos = std::max(pos, std::min(e.end, end));
  }
  NTADOC_RETURN_IF_ERROR(hash_span(pos, end));
  return h;
}

/// Labels every pool region the engine allocated so a scrub can map a
/// damaged block back to its owning object (ScrubReport::damage). List
/// data stays unlabeled: RepairDamage classifies it through the mutable
/// extents, not through owner names.
template <typename StateT>
void RegisterPoolOwners(nvm::NvmPool* pool, const StateT& st,
                        uint64_t catalog_off) {
  pool->ClearOwners();
  const uint32_t nr = st.dag.num_rules;
  const uint32_t nf = st.dag.num_files;
  pool->RegisterOwner(catalog_off, sizeof(Catalog), "catalog");
  pool->RegisterOwner(st.dag.rule_meta.offset(), nr * sizeof(RuleMeta),
                      "rule_meta");
  pool->RegisterOwner(st.dag.seg_meta.offset(), nf * sizeof(SegmentMeta),
                      "seg_meta");
  if (st.dag.payload_end > st.dag.payload_begin) {
    pool->RegisterOwner(st.dag.payload_begin,
                        st.dag.payload_end - st.dag.payload_begin, "payload");
  }
  if (st.use_local_grams) {
    pool->RegisterOwner(st.local_gram_meta.offset(), nr * sizeof(GramMeta),
                        "local_gram_meta");
    pool->RegisterOwner(st.seg_gram_meta.offset(), nf * sizeof(GramMeta),
                        "seg_gram_meta");
  }
  if (st.gram_end > st.gram_begin) {
    pool->RegisterOwner(st.gram_begin, st.gram_end - st.gram_begin,
                        "gram_payload");
  }
  if (st.use_queue) {
    pool->RegisterOwner(st.queue.offset(), nr * sizeof(uint32_t), "queue");
    pool->RegisterOwner(st.indeg.offset(), nr * sizeof(uint32_t), "indeg");
  }
  auto reg_table = [pool](const auto& t, uint64_t key_size, uint64_t val_size,
                          const char* name) {
    pool->RegisterOwner(t.status_offset(), t.capacity(), name);
    pool->RegisterOwner(t.keys_offset(), t.capacity() * key_size, name);
    pool->RegisterOwner(t.values_offset(), t.capacity() * val_size, name);
  };
  if (st.use_word_table) {
    reg_table(st.word_table, sizeof(uint32_t), sizeof(uint64_t),
              "word_table");
  }
  if (st.use_gram_table) {
    reg_table(st.gram_table, sizeof(NgramKey), sizeof(uint64_t),
              "gram_table");
  }
  if (st.use_file_table) {
    reg_table(st.file_table, sizeof(uint32_t), sizeof(uint64_t),
              "file_table");
  }
  if (st.use_file_gram_table) {
    reg_table(st.file_gram_table, sizeof(NgramKey), sizeof(uint64_t),
              "file_gram_table");
  }
  if (st.use_word_lists) {
    pool->RegisterOwner(st.word_list_meta.offset(), nr * sizeof(ListMeta),
                        "word_list_meta");
  }
  if (st.use_gram_lists) {
    pool->RegisterOwner(st.gram_list_meta.offset(), nr * sizeof(ListMeta),
                        "gram_list_meta");
  }
  pool->RegisterOwner(st.cursor_off, 64, "cursor");
  pool->RegisterOwner(st.integrity_off, 64, "integrity");
}

/// Tier-placement sibling of RegisterPoolOwners: registers the same
/// structure extents with the session TieredPool, mapped onto placement
/// classes. Must stay in lockstep with RegisterPoolOwners — an extent
/// only one of them knows about either escapes repair or escapes
/// placement.
template <typename StateT>
void RegisterTierExtents(nvm::TieredPool* tiered, const StateT& st,
                         uint64_t catalog_off) {
  using nvm::TierClass;
  tiered->ResetExtents();
  const uint32_t nr = st.dag.num_rules;
  const uint32_t nf = st.dag.num_files;
  tiered->RegisterExtent(catalog_off, sizeof(Catalog), TierClass::kMeta);
  tiered->RegisterExtent(st.dag.rule_meta.offset(), nr * sizeof(RuleMeta),
                         TierClass::kMeta);
  tiered->RegisterExtent(st.dag.seg_meta.offset(), nf * sizeof(SegmentMeta),
                         TierClass::kMeta);
  if (st.dag.payload_end > st.dag.payload_begin) {
    tiered->RegisterExtent(st.dag.payload_begin,
                           st.dag.payload_end - st.dag.payload_begin,
                           TierClass::kPayload);
  }
  if (st.use_local_grams) {
    tiered->RegisterExtent(st.local_gram_meta.offset(), nr * sizeof(GramMeta),
                           TierClass::kMeta);
    tiered->RegisterExtent(st.seg_gram_meta.offset(), nf * sizeof(GramMeta),
                           TierClass::kMeta);
  }
  if (st.gram_end > st.gram_begin) {
    tiered->RegisterExtent(st.gram_begin, st.gram_end - st.gram_begin,
                           TierClass::kGramPayload);
  }
  if (st.use_queue) {
    tiered->RegisterExtent(st.queue.offset(), nr * sizeof(uint32_t),
                           TierClass::kQueue);
    tiered->RegisterExtent(st.indeg.offset(), nr * sizeof(uint32_t),
                           TierClass::kQueue);
  }
  auto reg_table = [tiered](const auto& t, uint64_t key_size,
                            uint64_t val_size) {
    tiered->RegisterExtent(t.status_offset(), t.capacity(),
                           TierClass::kTable);
    tiered->RegisterExtent(t.keys_offset(), t.capacity() * key_size,
                           TierClass::kTable);
    tiered->RegisterExtent(t.values_offset(), t.capacity() * val_size,
                           TierClass::kTable);
  };
  if (st.use_word_table) {
    reg_table(st.word_table, sizeof(uint32_t), sizeof(uint64_t));
  }
  if (st.use_gram_table) {
    reg_table(st.gram_table, sizeof(NgramKey), sizeof(uint64_t));
  }
  if (st.use_file_table) {
    reg_table(st.file_table, sizeof(uint32_t), sizeof(uint64_t));
  }
  if (st.use_file_gram_table) {
    reg_table(st.file_gram_table, sizeof(NgramKey), sizeof(uint64_t));
  }
  if (st.use_word_lists) {
    tiered->RegisterExtent(st.word_list_meta.offset(), nr * sizeof(ListMeta),
                           TierClass::kMeta);
  }
  if (st.use_gram_lists) {
    tiered->RegisterExtent(st.gram_list_meta.offset(), nr * sizeof(ListMeta),
                           TierClass::kMeta);
  }
  tiered->RegisterExtent(st.cursor_off, 64, TierClass::kCursor);
  tiered->RegisterExtent(st.integrity_off, 64, TierClass::kCursor);
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / signature
// ---------------------------------------------------------------------------

NTadocEngine::NTadocEngine(const CompressedCorpus* corpus,
                           nvm::NvmDevice* device, NTadocOptions options)
    : corpus_(corpus),
      device_(device),
      options_(options),
      ses_(std::make_unique<SessionContext>()) {
  NTADOC_CHECK(corpus != nullptr);
  NTADOC_CHECK(device != nullptr);
}

NTadocEngine::~NTadocEngine() {
  // The device outlives this engine (tests and serving reuse it across
  // engines); never leave it routing charges through a dead TieredPool.
  if (ses_ != nullptr && ses_->tiered != nullptr &&
      device_->tier_router() == ses_->tiered.get()) {
    device_->set_tier_router(nullptr);
  }
}

const NTadocRunInfo& NTadocEngine::run_info() const { return ses_->run_info; }

Status NTadocEngine::CheckSessionLimits() const {
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("session cancelled");
  }
  if (ses_->deadline_ns != 0 &&
      device_->clock().NowNanos() > ses_->deadline_ns) {
    return Status::DeadlineExceeded("session sim-clock deadline expired");
  }
  return Status::OK();
}

void NTadocEngine::InvalidateRuleCaches() {
  if (ses_->rule_cache) ses_->rule_cache->Clear();
  if (options_.shared_cache) options_.shared_cache->Invalidate();
}

Status NTadocEngine::SetupTiering(State* st, uint64_t catalog_off,
                                  bool fresh) {
  nvm::TieredPool* tiered = ses_->tiered.get();
  if (tiered == nullptr) return Status::OK();
  // Fresh inits (including salvage restarts) reformat the placement
  // region: its committed entries describe a pool layout that no longer
  // exists. Attach loads the committed prefix instead, so a recovered
  // run resumes with every persistent-tier placement intact.
  NTADOC_RETURN_IF_ERROR(tiered->InitRegion(fresh));
  RegisterTierExtents(tiered, *st, catalog_off);
  return tiered->ApplyInitialPlacement();
}

Status NTadocEngine::MaybeMigrate(State* st) {
  nvm::TieredPool* tiered = ses_->tiered.get();
  if (tiered == nullptr) return Status::OK();
  NTADOC_RETURN_IF_ERROR(tiered->MaybeMigrate(st->tx_log()));
  if (tiered->TakePayloadDemotion()) {
    // Demoted payload units invalidate the decoded-rule caches: their
    // admission decisions were priced against the faster tier. mu_ is
    // not held here (lock order: repair/cache locks never nest inside
    // the migration mutex).
    InvalidateRuleCaches();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SharedRuleCache / SealedPrefix
// ---------------------------------------------------------------------------

SharedRuleCache::SharedRuleCache(uint64_t budget_bytes)
    : cache_(std::make_unique<NTadocEngine::RuleCache>(budget_bytes)) {}

SharedRuleCache::~SharedRuleCache() = default;

void SharedRuleCache::Invalidate() {
  util::MutexLock lock(&mu_);
  cache_->Clear();
  ++invalidations_;
}

uint64_t SharedRuleCache::entries() const {
  util::MutexLock lock(&mu_);
  return cache_->map.size();
}

uint64_t SharedRuleCache::invalidations() const {
  util::MutexLock lock(&mu_);
  return invalidations_;
}

SealedPrefix::SealedPrefix() = default;
SealedPrefix::~SealedPrefix() = default;

TraversalStrategy NTadocEngine::ResolveStrategy(Task task) const {
  if (options_.traversal != TraversalStrategy::kAuto) {
    return options_.traversal;
  }
  if (tadoc::IsPerFileTask(task) &&
      corpus_->num_files() > options_.many_files_threshold) {
    return TraversalStrategy::kBottomUp;
  }
  return TraversalStrategy::kTopDown;
}

namespace {

uint64_t ComputeSignature(const CompressedCorpus& corpus, Task task,
                          const AnalyticsOptions& opts,
                          TraversalStrategy strategy,
                          const NTadocOptions& options) {
  uint64_t h = Mix64(static_cast<uint64_t>(task));
  h = HashCombine(h, opts.ngram);
  h = HashCombine(h, opts.top_k);
  h = HashCombine(h, static_cast<uint64_t>(strategy));
  h = HashCombine(h, static_cast<uint64_t>(options.persistence));
  h = HashCombine(h, options.enable_pruning ? 1 : 0);
  h = HashCombine(h, options.enable_summation ? 1 : 0);
  h = HashCombine(h, corpus.grammar.NumRules());
  h = HashCombine(h, corpus.grammar.num_files);
  h = HashCombine(h, corpus.grammar.dict_size);
  h = HashCombine(h, corpus.grammar.TotalSymbols());
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Persistence helpers
// ---------------------------------------------------------------------------

void NTadocEngine::CommitPhase(uint64_t phase) {
  if (options_.persistence == PersistenceMode::kNone) return;
  nvm::PhaseMarker marker(device_, kMarkerOffset);
  marker.CommitPhase(phase);
}

Status NTadocEngine::MaybeInjectCrash(State* st) {
  if (options_.crash_after_traversal_steps != 0 &&
      ses_->run_info.traversal_steps >= options_.crash_after_traversal_steps) {
    device_->SimulateCrash();
    return Status::Internal("injected crash after " +
                            std::to_string(ses_->run_info.traversal_steps) +
                            " traversal steps");
  }
  (void)st;
  return Status::OK();
}

Status NTadocEngine::CheckMediaErrors() {
  const uint64_t n = device_->media_error_count();
  if (n != ses_->media_errors_seen) {
    ses_->media_errors_seen = n;
    if (ses_->degraded) {
      // Degraded mode: the lost data contributes nothing; the event is
      // folded into the run's completeness fraction instead of failing.
      ++ses_->degraded_events;
      return Status::OK();
    }
    return Status::DataLoss(
        "uncorrectable media error during traversal reads");
  }
  return Status::OK();
}

namespace {

/// Writes the durable cursor through the step writer.
void StageCursor(StepWriter* w, uint64_t cursor_off, uint64_t stage,
                 uint64_t a, uint64_t b) {
  CursorSlot c{kCursorMagic, stage, a, b, 0};
  c.checksum = CursorChecksum(c);
  w->WriteValue(cursor_off, c);
}

/// Reads the cursor; stage 0 if torn/unwritten.
CursorSlot ReadCursor(nvm::NvmDevice* device, uint64_t cursor_off) {
  CursorSlot c = device->Read<CursorSlot>(cursor_off);
  if (c.magic != kCursorMagic || c.checksum != CursorChecksum(c)) {
    return CursorSlot{kCursorMagic, 0, 0, 0, 0};
  }
  return c;
}

/// Epoch-mode error unwinding. A step that fails mid-epoch (media damage
/// surfacing as DataLoss — never an injected crash, which must not write
/// post-crash) leaves uncommitted write-through values in home with no
/// power loss to roll them back; scoped repair would then resume
/// mid-phase and re-apply deltas on top of them. Reset to a clean
/// boundary instead: drop any open transaction, checkpoint the committed
/// state, and move the durable cursor back to stage 0 so the next
/// attempt re-runs the phase from its idempotent reset (which rewrites
/// every line the abandoned epoch dirtied).
void AbortToPhaseStart(nvm::NvmDevice* device, nvm::RedoLog* log,
                       uint64_t cursor_off) {
  if (log->in_transaction()) log->Abort();
  log->FlushAppliedHome();
  log->Truncate();
  CursorSlot fresh{kCursorMagic, 0, 0, 0, 0};
  fresh.checksum = CursorChecksum(fresh);
  device->Write(cursor_off, fresh);
  device->FlushRange(cursor_off, sizeof(CursorSlot));
  device->Drain();
  device->AssertPersisted(cursor_off, sizeof(CursorSlot));
}

}  // namespace

// ---------------------------------------------------------------------------
// Initialization phase
// ---------------------------------------------------------------------------

Result<bool> NTadocEngine::TryAttach(State* st, uint64_t pool_base) {
  if (options_.persistence == PersistenceMode::kNone) return false;
  const auto& grammar = corpus_->grammar;

  // Every detected-corruption exit funnels through here: count it, log
  // it, and fall back to a fresh init (which rewrites — and thereby
  // heals — the damaged state).
  auto corrupt = [&](const char* what) -> bool {
    ++ses_->run_info.corruption_detected;
    NTADOC_LOG(Warning) << "recovery attach rejected: " << what
                        << "; restarting from the compressed container";
    return false;
  };

  // The replicated metadata at the device tail can stand in for any of
  // the critical primaries (marker, pool header, catalog, integrity
  // record); a failover rewrites the primary from the mirror copy.
  // Loaded lazily: the fault-free attach path never reads it.
  bool mirror_probed = false;
  std::optional<MetaMirror> mirror;
  auto get_mirror = [&]() -> MetaMirror* {
    if (!mirror_probed) {
      mirror_probed = true;
      mirror = ReadMetaMirror(device_, st->signature);
    }
    return mirror ? &*mirror : nullptr;
  };
  auto failover = [&](const char* what) {
    ++ses_->run_info.corruption_detected;
    ++ses_->run_info.scoped_repairs;
    NTADOC_LOG(Warning) << what << "; restored from the metadata mirror";
  };

  {
    uint8_t region[kMarkerRegion];
    if (!device_->TryReadBytes(kMarkerOffset, region, sizeof(region)).ok()) {
      MetaMirror* m = get_mirror();
      if (m == nullptr) return corrupt("phase marker unreadable");
      failover("phase marker unreadable");
      device_->WriteBytes(kMarkerOffset, m->marker, sizeof(m->marker));
      device_->FlushRange(kMarkerOffset, sizeof(m->marker));
      device_->Drain();
    }
  }
  nvm::PhaseMarker marker(device_, kMarkerOffset);
  const uint64_t committed = marker.LastCommittedPhase();
  if (committed < 1 || committed >= 2) return false;  // nothing to reuse

  auto pool = nvm::NvmPool::Open(device_, pool_base);
  if (!pool.ok()) {
    MetaMirror* m = get_mirror();
    if (m != nullptr) {
      failover("pool header corrupt");
      device_->WriteBytes(pool_base, m->pool_header, sizeof(m->pool_header));
      device_->FlushRange(pool_base, sizeof(m->pool_header));
      device_->Drain();
      pool = nvm::NvmPool::Open(device_, pool_base);
    }
    if (!pool.ok()) return corrupt("pool header corrupt");
  }
  st->pool.emplace(std::move(pool).value());

  const uint64_t catalog_off = pool_base + 64;  // first allocation
  Catalog cat;
  const bool cat_ok =
      device_->TryReadBytes(catalog_off, &cat, sizeof(cat)).ok() &&
      cat.magic == kCatalogMagic && cat.checksum == CatalogChecksum(cat);
  if (!cat_ok) {
    MetaMirror* m = get_mirror();
    if (m == nullptr) return corrupt("catalog unreadable or corrupt");
    failover("catalog unreadable or corrupt");
    cat = m->catalog;
    device_->Write(catalog_off, cat);
    device_->FlushRange(catalog_off, sizeof(cat));
    device_->Drain();
  }
  if (cat.signature != st->signature) {
    return false;  // a different run's state — stale, not corrupt
  }

  const uint32_t nr = grammar.NumRules();
  const uint32_t nf = grammar.num_files;
  st->dag.pruned = cat.pruned != 0;
  st->dag.num_rules = nr;
  st->dag.num_files = nf;
  st->dag.layout_order = grammar.TopologicalOrder();
  st->dag.rule_meta =
      NvmVector<RuleMeta>::Attach(&*st->pool, cat.rule_meta_off, nr, nr);
  st->dag.seg_meta =
      NvmVector<SegmentMeta>::Attach(&*st->pool, cat.seg_meta_off, nf, nf);
  if (st->use_queue) {
    st->queue =
        NvmVector<uint32_t>::Attach(&*st->pool, cat.queue_off, nr, nr);
    st->indeg =
        NvmVector<uint32_t>::Attach(&*st->pool, cat.indeg_off, nr, nr);
  }
  if (st->use_word_table) {
    st->word_table = WordTable::Attach(&*st->pool, cat.word_status,
                                       cat.word_keys, cat.word_vals,
                                       cat.word_cap);
  }
  if (st->use_gram_table) {
    st->gram_table = GramTable::Attach(&*st->pool, cat.gram_status,
                                       cat.gram_keys, cat.gram_vals,
                                       cat.gram_cap);
  }
  if (st->use_file_table) {
    st->file_table = WordTable::Attach(&*st->pool, cat.ftbl_status,
                                       cat.ftbl_keys, cat.ftbl_vals,
                                       cat.ftbl_cap);
  }
  if (st->use_file_gram_table) {
    st->file_gram_table =
        GramTable::Attach(&*st->pool, cat.fgram_status, cat.fgram_keys,
                          cat.fgram_vals, cat.fgram_cap);
  }
  if (st->use_word_lists) {
    st->word_list_meta = NvmVector<ListMeta>::Attach(
        &*st->pool, cat.word_list_meta_off, nr, nr);
  }
  if (st->use_gram_lists) {
    st->gram_list_meta = NvmVector<ListMeta>::Attach(
        &*st->pool, cat.gram_list_meta_off, nr, nr);
  }
  if (st->use_local_grams) {
    st->local_gram_meta = NvmVector<GramMeta>::Attach(
        &*st->pool, cat.local_gram_meta_off, nr, nr);
    st->seg_gram_meta = NvmVector<GramMeta>::Attach(
        &*st->pool, cat.seg_gram_meta_off, nf, nf);
  }
  st->cursor_off = cat.cursor_off;
  st->integrity_off = cat.integrity_off;
  st->dag.payload_begin = cat.payload_begin;
  st->dag.payload_end = cat.payload_end;
  st->gram_begin = cat.gram_begin;
  st->gram_end = cat.gram_end;
  // Scoped salvage rewrites blocks inside these extents, so they must be
  // sane before any repair trusts them.
  if (cat.payload_begin > cat.payload_end ||
      cat.payload_end > st->pool->top() ||
      (cat.payload_begin != 0 && cat.payload_begin < catalog_off) ||
      cat.gram_begin > cat.gram_end || cat.gram_end > st->pool->top()) {
    return corrupt("catalog payload extents out of bounds");
  }

  // Redo-log recovery runs before the media scrub and any repair: a
  // committed-but-unapplied step must land first, or a replayed cursor
  // could resurrect a resume point that repair just reset.
  if (options_.persistence == PersistenceMode::kOperation) {
    auto log = nvm::RedoLog::Open(device_, kMarkerRegion);
    if (!log.ok()) return corrupt("redo log header corrupt");
    st->log.emplace(std::move(log).value());
    const auto replayed = st->log->Recover();
    if (!replayed.ok()) return corrupt("redo log recovery failed");
  }

  // Media scrub before trusting any pool content; damaged blocks are
  // repaired in place (re-derived and remapped) when every damaged byte
  // is re-derivable, so a single bad block costs one object's repair
  // instead of a full restart.
  RegisterPoolOwners(&*st->pool, *st, catalog_off);
  const auto scrub = st->pool->Scrub();
  if (!scrub.ok()) return corrupt("pool scrub failed");
  if (scrub.value().bad_blocks > 0) {
    if (!RepairDamage(st, scrub.value().damage)) {
      ses_->run_info.blocks_lost += scrub.value().bad_blocks;
      return corrupt("unrepairable media damage in pool");
    }
  }

  // Structural invariants: a torn flush in a list descriptor would
  // otherwise send WriteList to a wild offset.
  const uint64_t dev_cap = device_->capacity();
  auto lists_ok = [&](const NvmVector<ListMeta>& metas,
                      uint64_t entry_size) {
    // One borrowed span over the descriptors (the scrub above already
    // proved the pool readable, so a span failure here is itself
    // corruption).
    auto span = metas.ReadSpan(0, nr);
    if (!span.ok()) return false;
    const ListMeta* m = *span;
    for (uint32_t r = 0; r < nr; ++r) {
      if (m[r].size > m[r].capacity) return false;
      if (m[r].capacity > 0 &&
          (m[r].off < pool_base + 64 ||
           m[r].off % alignof(uint64_t) != 0 ||
           m[r].off + m[r].capacity * entry_size > dev_cap)) {
        return false;
      }
    }
    return true;
  };
  if (st->use_word_lists && !lists_ok(st->word_list_meta, sizeof(WordEntry))) {
    return corrupt("word list descriptor out of bounds");
  }
  if (st->use_gram_lists && !lists_ok(st->gram_list_meta, sizeof(GramEntry))) {
    return corrupt("gram list descriptor out of bounds");
  }
  if (st->use_word_table && !st->word_table.Validate().ok()) {
    return corrupt("word table buffers corrupt");
  }
  if (st->use_gram_table && !st->gram_table.Validate().ok()) {
    return corrupt("gram table buffers corrupt");
  }
  if (st->use_file_table && !st->file_table.Validate().ok()) {
    return corrupt("file table buffers corrupt");
  }
  if (st->use_file_gram_table && !st->file_gram_table.Validate().ok()) {
    return corrupt("file gram table buffers corrupt");
  }

  // End-to-end integrity: recompute the hash of everything the traversal
  // never mutates and compare with the record written at init commit.
  InitIntegrity ii;
  bool ii_ok = cat.integrity_off != 0 &&
               device_->TryReadBytes(cat.integrity_off, &ii, sizeof(ii)).ok() &&
               ii.magic == kIntegrityMagic &&
               ii.checksum == IntegrityChecksum(ii);
  if (!ii_ok && cat.integrity_off != 0) {
    // A degraded init writes an intentionally invalid record (magic 0);
    // its mirror copy is equally invalid, so this failover can never
    // bless an init that was sealed without a verified hash.
    MetaMirror* m = get_mirror();
    if (m != nullptr && m->integrity.magic == kIntegrityMagic &&
        m->integrity.checksum == IntegrityChecksum(m->integrity)) {
      failover("init integrity record corrupt");
      ii = m->integrity;
      device_->Write(cat.integrity_off, ii);
      device_->FlushRange(cat.integrity_off, sizeof(ii));
      device_->Drain();
      ii_ok = true;
    }
  }
  if (!ii_ok) return corrupt("init integrity record unreadable or corrupt");
  if (ii.init_top < pool_base + 128 || ii.init_top > st->pool->top()) {
    return corrupt("init integrity bounds corrupt");
  }
  const auto hash =
      HashImmutableRegion(device_, pool_base + 64, ii.init_top,
                          CollectMutableExtents(*st, cat.integrity_off));
  if (!hash.ok()) return corrupt("immutable region unreadable");
  if (hash.value() != ii.region_hash) {
    return corrupt("immutable region hash mismatch (torn write or bit rot)");
  }

  ses_->run_info.init_phase_reused = true;
  return true;
}

// Scoped salvage (the repair counterpart of TryAttach's detection): each
// damaged 256 B block is repaired by re-deriving every object it overlaps
// from the compressed container (payloads, local gram lists — byte-exact,
// so the init integrity hash still verifies), zeroing traversal state the
// next stage-0 pass rebuilds anyway, or restoring replicated metadata
// from the mirror. The healed contents are then moved to a spare block
// through the pool's remap table. Any damaged byte that fits none of
// those classes makes the block unrepairable and the caller salvages.
bool NTadocEngine::RepairDamage(
    State* st, const std::vector<nvm::NvmPool::Damage>& damage) {
  if (!st->pool || st->dag.num_rules == 0) return false;
  // Serving sessions serialize repairs on the pool-level lock: at most
  // one session rewrites (its private copy of) pool state at a time,
  // keeping repair burst load off the device model while siblings read.
  util::OptionalMutexLock repair_lk(options_.repair_lock.get());
  nvm::NvmPool& pool = *st->pool;
  const auto& grammar = corpus_->grammar;
  constexpr uint64_t kBlock = nvm::NvmPool::kMediaBlock;
  const uint64_t catalog_off = pool.base() + nvm::NvmPool::kHeaderSlot;
  const uint64_t top = pool.top();
  const uint32_t nr = st->dag.num_rules;
  const uint32_t nf = st->dag.num_files;

  // Object extents, computed once up front. Poisoned metadata reads come
  // back as zeros and contribute no extent; the blocks they would have
  // covered then fail the coverage check, which is the correct outcome
  // (metadata arrays are not re-derivable here).
  struct Obj {
    enum Kind : uint8_t { kRule, kSeg, kLocalGram, kSegGram };
    uint64_t begin, end;
    uint32_t id;
    Kind kind;
  };
  std::vector<Obj> objs;
  for (uint32_t r = 1; r < nr; ++r) {
    const RuleMeta m = st->dag.rule_meta.Get(r);
    const uint64_t len =
        st->dag.pruned
            ? (uint64_t{m.num_subrules} + m.num_words) * sizeof(PrunedEntry)
            : uint64_t{m.raw_len} * sizeof(Symbol);
    if (len == 0 || m.payload_off < st->dag.payload_begin ||
        m.payload_off + len > st->dag.payload_end) {
      continue;
    }
    objs.push_back(Obj{m.payload_off, m.payload_off + len, r, Obj::kRule});
  }
  for (uint32_t f = 0; f < nf; ++f) {
    const SegmentMeta m = st->dag.seg_meta.Get(f);
    const uint64_t len = (uint64_t{m.num_subrules} + m.num_words) *
                         (st->dag.pruned ? sizeof(PrunedEntry)
                                         : sizeof(Symbol));
    if (len == 0 || m.payload_off < st->dag.payload_begin ||
        m.payload_off + len > st->dag.payload_end) {
      continue;
    }
    objs.push_back(Obj{m.payload_off, m.payload_off + len, f, Obj::kSeg});
  }
  if (st->use_local_grams) {
    for (uint32_t r = 1; r < nr; ++r) {
      const GramMeta gm = st->local_gram_meta.Get(r);
      const uint64_t len = gm.count * sizeof(GramEntry);
      if (len == 0 || gm.off < st->gram_begin ||
          gm.off + len > st->gram_end) {
        continue;
      }
      objs.push_back(Obj{gm.off, gm.off + len, r, Obj::kLocalGram});
    }
    for (uint32_t f = 0; f < nf; ++f) {
      const GramMeta gm = st->seg_gram_meta.Get(f);
      const uint64_t len = gm.count * sizeof(GramEntry);
      if (len == 0 || gm.off < st->gram_begin ||
          gm.off + len > st->gram_end) {
        continue;
      }
      objs.push_back(Obj{gm.off, gm.off + len, f, Obj::kSegGram});
    }
  }

  const std::vector<ByteRange> mut =
      CollectMutableExtents(*st, st->integrity_off);

  // Gram re-derivation machinery, built only when a gram payload is
  // actually damaged (the head/tail table is the expensive part).
  std::optional<tadoc::HeadTailTable> ht;
  std::optional<tadoc::WindowScanner> scanner;
  auto gram_entries =
      [&](std::span<const Symbol> seq) -> std::vector<GramEntry> {
    if (!ht) {
      ht.emplace(tadoc::HeadTailTable::Build(grammar, st->opts.ngram));
      scanner.emplace(&*ht, st->opts.ngram);
    }
    std::vector<std::pair<NgramKey, uint64_t>> local;
    scanner->Scan(seq, [&](const NgramKey& k) { local.emplace_back(k, 1); });
    SortAndCombine(&local);
    std::vector<GramEntry> entries;
    entries.reserve(local.size());
    for (const auto& [k, c] : local) entries.push_back(GramEntry{k, c});
    return entries;
  };
  // Separator-delimited root segment spans, exactly as init laid them out.
  auto root_segment = [&](uint32_t f) -> std::span<const Symbol> {
    const auto& root = grammar.rules[0];
    uint32_t begin = 0;
    uint32_t seg = 0;
    for (uint32_t i = 0; i < root.size(); ++i) {
      if (IsWord(root[i]) && IsFileSep(root[i])) {
        if (seg == f) {
          return std::span<const Symbol>(root.data() + begin, i - begin);
        }
        begin = i + 1;
        ++seg;
      }
    }
    return {};
  };

  const uint64_t cursor_b = st->cursor_off;
  const uint64_t cursor_e = st->cursor_off + 64;
  const uint64_t integ_b = st->integrity_off;
  const uint64_t integ_e = st->integrity_off + 64;
  bool cursor_reset = false;
  std::optional<MetaMirror> mirror;  // loaded on first metadata restore

  for (const nvm::NvmPool::Damage& d : damage) {
    ++ses_->run_info.corruption_detected;
    const uint64_t b0 = d.block_off;
    const uint64_t b1 = std::min(b0 + kBlock, top);
    if (b0 < pool.base() || b1 <= b0) {
      // The block holds the pool header (and the marker region below
      // it): not repairable at this layer.
      return false;
    }
    auto overlaps = [&](uint64_t a, uint64_t b) { return a < b1 && b > b0; };
    NTADOC_LOG(Warning) << "scoped repair of media block at " << b0
                        << " (owner: "
                        << (d.owner.empty() ? "unowned" : d.owner) << ")";

    // Plan coverage first: every damaged byte must be re-derivable,
    // resettable or restorable, or the caller has to salvage.
    std::vector<ByteRange> covered;
    auto cover = [&](uint64_t a, uint64_t b) {
      a = std::max(a, b0);
      b = std::min(b, b1);
      if (a < b) covered.push_back(ByteRange{a, b});
    };
    cover(catalog_off, catalog_off + sizeof(Catalog));
    cover(cursor_b, cursor_e);
    cover(integ_b, integ_e);
    if (st->dag.payload_end > st->dag.payload_begin) {
      cover(st->dag.payload_begin, st->dag.payload_end);
    }
    if (st->gram_end > st->gram_begin) cover(st->gram_begin, st->gram_end);
    for (const ByteRange& e : mut) cover(e.begin, e.end);
    std::sort(covered.begin(), covered.end(),
              [](const ByteRange& a, const ByteRange& b) {
                return a.begin < b.begin;
              });
    // Uncovered gaps overlapping a registered owner are immutable,
    // non-re-derivable structure (metadata arrays): unrepairable. Gaps
    // no owner claims are allocator padding — never written since the
    // pool was created, so rewriting zeros restores them byte-exactly
    // (the init integrity hash covers padding).
    std::vector<ByteRange> padding;
    uint64_t pos = b0;
    auto claim_gap = [&](uint64_t a, uint64_t b) {
      if (a >= b) return true;
      if (!pool.OwnerOf(a, b - a).empty()) return false;
      padding.push_back(ByteRange{a, b});
      return true;
    };
    for (const ByteRange& e : covered) {
      if (e.begin > pos && !claim_gap(pos, e.begin)) return false;
      pos = std::max(pos, e.end);
      if (pos >= b1) break;
    }
    if (pos < b1 && !claim_gap(pos, b1)) return false;

    // Reset baseline: zero the damaged slices of the payload/gram
    // regions (restores allocator padding to its never-written state)
    // and of the mutable traversal extents (the next stage-0 pass
    // rebuilds those from init-phase data anyway).
    auto zero = [&](uint64_t a, uint64_t b) {
      static constexpr uint8_t kZeros[nvm::NvmPool::kMediaBlock] = {};
      a = std::max(a, b0);
      b = std::min(b, b1);
      if (a >= b) return;
      device_->WriteBytes(a, kZeros, b - a);
      device_->FlushRange(a, b - a);
    };
    if (st->dag.payload_end > st->dag.payload_begin) {
      zero(st->dag.payload_begin, st->dag.payload_end);
    }
    if (st->gram_end > st->gram_begin) zero(st->gram_begin, st->gram_end);
    for (const ByteRange& e : padding) zero(e.begin, e.end);
    for (const ByteRange& e : mut) {
      // The cursor and integrity slots get real contents below.
      if (e.begin >= cursor_b && e.end <= cursor_e) continue;
      if (e.begin >= integ_b && e.end <= integ_e) continue;
      if (overlaps(e.begin, e.end)) {
        zero(e.begin, e.end);
        cursor_reset = true;
      }
    }

    // Re-derive every object the block overlaps. Full-object rewrites:
    // byte-exact reproductions of what init wrote, so the integrity hash
    // still verifies afterward.
    for (const Obj& o : objs) {
      if (!overlaps(o.begin, o.end)) continue;
      switch (o.kind) {
        case Obj::kRule:
          if (!RederiveRulePayload(grammar, st->dag, &pool, o.id).ok()) {
            return false;
          }
          break;
        case Obj::kSeg:
          if (!RederiveSegmentPayload(grammar, st->dag, &pool, o.id).ok()) {
            return false;
          }
          break;
        case Obj::kLocalGram:
        case Obj::kSegGram: {
          const std::vector<GramEntry> entries =
              o.kind == Obj::kLocalGram
                  ? gram_entries(std::span<const Symbol>(grammar.rules[o.id]))
                  : gram_entries(root_segment(o.id));
          if (entries.size() * sizeof(GramEntry) != o.end - o.begin) {
            return false;  // metadata inconsistent with re-derivation
          }
          device_->WriteBytes(o.begin, entries.data(), o.end - o.begin);
          device_->FlushRange(o.begin, o.end - o.begin);
          break;
        }
      }
    }

    // Restore replicated metadata the block overlaps.
    if (overlaps(cursor_b, cursor_e)) {
      CursorSlot fresh{kCursorMagic, 0, 0, 0, 0};
      fresh.checksum = CursorChecksum(fresh);
      device_->Write(st->cursor_off, fresh);
      device_->FlushRange(st->cursor_off, sizeof(fresh));
      cursor_reset = true;
    }
    if (overlaps(catalog_off, catalog_off + sizeof(Catalog)) ||
        overlaps(integ_b, integ_e)) {
      if (!mirror) mirror = ReadMetaMirror(device_, st->signature);
      if (!mirror) return false;
      if (overlaps(catalog_off, catalog_off + sizeof(Catalog))) {
        device_->Write(catalog_off, mirror->catalog);
        device_->FlushRange(catalog_off, sizeof(Catalog));
      }
      if (overlaps(integ_b, integ_e)) {
        if (mirror->integrity.magic != kIntegrityMagic) return false;
        device_->Write(st->integrity_off, mirror->integrity);
        device_->FlushRange(st->integrity_off, sizeof(InitIntegrity));
      }
    }

    // The writes above healed the block (the emulated controller
    // rewrites whole ECC blocks on a store) and untouched bytes keep
    // their original contents; read the authoritative block back and
    // move it to a spare. A read that still fails means the media is
    // dead beyond remapping (degraded-mode territory).
    uint8_t buf[nvm::NvmPool::kMediaBlock];
    if (!device_->TryReadBytes(b0, buf, b1 - b0).ok()) return false;
    const auto slot = pool.RemapBlock(b0, buf, b1 - b0, st->tx_log());
    if (!slot.ok()) return false;  // out of spares / remap table full
    ++ses_->run_info.blocks_remapped;
    ++ses_->run_info.scoped_repairs;
  }
  device_->Drain();

  if (cursor_reset) {
    // Zero-filled traversal state invalidates any resume point: restart
    // the traversal from stage 0 against the repaired init state. The
    // redo log must be emptied first — its committed transactions hold
    // the old cursor, and replaying it on re-attach would resurrect a
    // resume point into state the repair just reset.
    if (st->log) {
      st->log->FlushAppliedHome();
      st->log->Truncate();
    }
    CursorSlot fresh{kCursorMagic, 0, 0, 0, 0};
    fresh.checksum = CursorChecksum(fresh);
    device_->Write(st->cursor_off, fresh);
    device_->FlushRange(st->cursor_off, sizeof(fresh));
    device_->Drain();
  }
  // The repair rewrote pool payloads under the offsets the decoded-rule
  // caches are keyed by; drop them (private and shared) before anything
  // replays a stale entry.
  InvalidateRuleCaches();
  return true;
}

// Mid-run repair: the traversal hit an unreadable block. Scrub the pool
// to find all current damage and repair it in place so the run can
// re-attach and resume instead of restarting from the container.
bool NTadocEngine::TryScopedRepair() {
  if (!ses_->state || !ses_->state->pool) return false;
  State* st = ses_->state.get();
  const uint64_t catalog_off =
      st->pool->base() + nvm::NvmPool::kHeaderSlot;
  RegisterPoolOwners(&*st->pool, *st, catalog_off);
  const auto scrub = st->pool->Scrub();
  if (!scrub.ok()) return false;
  if (scrub.value().bad_blocks == 0) return false;  // damage not in pool
  return RepairDamage(st, scrub.value().damage);
}

std::pair<uint64_t, uint64_t> NTadocEngine::payload_region() const {
  if (!ses_->state) return {0, 0};
  return {ses_->state->dag.payload_begin, ses_->state->dag.payload_end};
}

Status NTadocEngine::InitPhase(Task task, const AnalyticsOptions& opts,
                               State* st, bool force_fresh) {
  const auto& grammar = corpus_->grammar;
  // A private cache is keyed by (kind, id) against the pool this phase
  // lays out; anything decoded from a previous attempt (or a salvaged
  // pool) is stale now. A shared cache is NOT cleared here: concurrent
  // sessions init private clones of one deterministic sealed layout, so
  // cross-session entries stay valid until a repair/salvage explicitly
  // invalidates them.
  if (options_.shared_cache) {
    ses_->rule_cache.reset();
    if (!ses_->cache_dram) {
      ses_->cache_dram.emplace(nvm::DramProfile(), device_->clock_ptr());
    }
  } else if (options_.dram_cache_bytes > 0) {
    if (!ses_->rule_cache) {
      ses_->rule_cache =
          std::make_unique<RuleCache>(options_.dram_cache_bytes);
    } else {
      ses_->rule_cache->Clear();
    }
    if (!ses_->cache_dram) {
      ses_->cache_dram.emplace(nvm::DramProfile(), device_->clock_ptr());
    }
  }
  st->task = task;
  st->opts = opts;
  st->strategy = ResolveStrategy(task);
  st->signature =
      ComputeSignature(*corpus_, task, opts, st->strategy, options_);

  const bool seq = tadoc::IsSequenceTask(task);
  const bool per_file = tadoc::IsPerFileTask(task);
  const bool bottom_up = st->strategy == TraversalStrategy::kBottomUp;

  st->use_local_grams = seq;
  if (bottom_up) {
    st->use_word_lists = !seq;
    st->use_gram_lists = seq;
    st->use_word_table = task == Task::kWordCount || task == Task::kSort;
    st->use_gram_table = task == Task::kSequenceCount;
  } else {
    st->use_queue = !per_file;
    st->use_word_table = task == Task::kWordCount || task == Task::kSort;
    st->use_gram_table = task == Task::kSequenceCount;
    st->use_file_table =
        task == Task::kTermVector || task == Task::kInvertedIndex;
    st->use_file_gram_table = task == Task::kRankedInvertedIndex;
  }

  const uint64_t pool_base =
      kMarkerRegion + (options_.persistence == PersistenceMode::kOperation
                         ? options_.redo_log_bytes
                         : 0);
  // Persistent runs reserve the device tail for the metadata mirror.
  uint64_t pool_size =
      device_->capacity() - pool_base -
      (options_.persistence != PersistenceMode::kNone ? kMirrorRegion : 0);
  if (options_.tiering != nullptr) {
    // Tiered runs additionally reserve the durable placement region
    // between the pool end and the mirror. The reserve is deterministic
    // from options, so an attach recomputes the identical layout.
    const uint64_t reserve =
        nvm::TieredPool::PlacementReserve(*options_.tiering);
    if (pool_size <= 2 * reserve) {
      return Status::InvalidArgument(
          "device too small for a tiered placement region");
    }
    pool_size -= reserve;
    if (ses_->tiered == nullptr) {
      NTADOC_ASSIGN_OR_RETURN(
          ses_->tiered,
          nvm::TieredPool::Make(device_, pool_base + pool_size, reserve,
                                *options_.tiering));
      device_->set_tier_router(ses_->tiered.get());
    }
  }

  // Shared init prefix, if one applies: a RunBatch-local prefix from an
  // earlier task of this batch takes priority; otherwise a SealedPrefix
  // captured over the image this session's device was cloned from. Both
  // replace the expensive task-independent half of this phase — the
  // container load, the pruned DAG build, and the estimator's payload
  // reads.
  const BatchShared* reuse_src = nullptr;
  if (!force_fresh) {
    if (ses_->batch_shared && ses_->batch_shared->valid &&
        ses_->batch_shared->pool_base == pool_base) {
      reuse_src = ses_->batch_shared.get();
    } else if (const SealedPrefix* sp = options_.sealed_prefix.get();
               sp != nullptr && sp->shared_ != nullptr &&
               sp->shared_->valid && sp->corpus_ == corpus_ &&
               sp->pruned_ == options_.enable_pruning &&
               sp->persistence_ == options_.persistence &&
               (sp->persistence_ != PersistenceMode::kOperation ||
                sp->redo_log_bytes_ == options_.redo_log_bytes) &&
               sp->container_generation_ == options_.container_generation &&
               sp->shared_->pool_base == pool_base) {
      reuse_src = sp->shared_.get();
    }
  }
  // True only for the mutable RunBatch prefix: a sealed prefix is shared
  // read-only across sessions and must never be written through.
  const bool own_reuse = reuse_src != nullptr &&
                         reuse_src == ses_->batch_shared.get();

  // ---- Attach path: a completed, signature-matching init is reused ----
  // Skipped when a shared prefix applies: the prefix already proves the
  // image's init half, and per-task structures are reallocated anyway.
  if (!force_fresh && reuse_src == nullptr) {
    NTADOC_ASSIGN_OR_RETURN(const bool attached, TryAttach(st, pool_base));
    if (attached) {
      NTADOC_RETURN_IF_ERROR(
          SetupTiering(st, pool_base + 64, /*fresh=*/false));
      return Status::OK();
    }
  }

  // ---- Fresh initialization ----
  const bool batch_reuse = reuse_src != nullptr;
  // The local-gram region extends the reusable prefix only when it was
  // laid down for the same n and nothing allocated over it since.
  const bool gram_reuse = batch_reuse && st->use_local_grams &&
                          reuse_src->gram_valid &&
                          reuse_src->gram_ngram == opts.ngram;
  const uint64_t init_sim_t0 = device_->clock().NowNanos();
  nvm::PhaseMarker marker(device_, kMarkerOffset);
  if (!batch_reuse) {
    // Reading the compressed container from the source disk (the paper
    // times dataset loading; N-TADOC reads the compressed representation).
    uint64_t container_bytes =
        grammar.TotalSymbols() * sizeof(Symbol) + 16 * grammar.NumRules();
    for (compress::WordId w = 0; w < corpus_->dict.size(); ++w) {
      container_bytes += corpus_->dict.Spell(w).size() + 4;
    }
    device_->clock().Charge(static_cast<uint64_t>(
        container_bytes * nvm::kSourceDiskNsPerByte));
  }
  marker.Format();
  if (options_.persistence == PersistenceMode::kOperation) {
    NTADOC_ASSIGN_OR_RETURN(
        auto log,
        nvm::RedoLog::Create(device_, kMarkerRegion, options_.redo_log_bytes));
    st->log.emplace(std::move(log));
  }
  Catalog cat{};
  cat.magic = kCatalogMagic;
  cat.signature = st->signature;
  cat.pruned = options_.enable_pruning ? 1 : 0;
  uint64_t catalog_off = 0;
  if (batch_reuse) {
    // Re-open the pool over the previous task's layout and roll the bump
    // pointer back to the end of the shared prefix; the catalog slot and
    // the pruned DAG stay in place, everything later is reallocated.
    NTADOC_ASSIGN_OR_RETURN(auto pool,
                            nvm::NvmPool::Open(device_, pool_base));
    st->pool.emplace(std::move(pool));
    NTADOC_RETURN_IF_ERROR(st->pool->ResetTopTo(
        gram_reuse ? reuse_src->gram_top : reuse_src->dag_top));
    // A non-sequence task allocates over the gram region, invalidating
    // the extension — but only for the mutable batch prefix; a sealed
    // prefix's sessions each overwrite a private device clone, never the
    // shared image.
    if (!gram_reuse && own_reuse) ses_->batch_shared->gram_valid = false;
    catalog_off = reuse_src->catalog_off;
    st->dag = reuse_src->dag;
    st->dag.rule_meta = NvmVector<RuleMeta>::Attach(
        &*st->pool, reuse_src->dag.rule_meta.offset(),
        reuse_src->dag.rule_meta.capacity(),
        reuse_src->dag.rule_meta.size());
    st->dag.seg_meta = NvmVector<SegmentMeta>::Attach(
        &*st->pool, reuse_src->dag.seg_meta.offset(),
        reuse_src->dag.seg_meta.capacity(),
        reuse_src->dag.seg_meta.size());
    ses_->run_info.prune = reuse_src->prune;
    ++ses_->run_info.batch_init_reuses;
    // Satellite (b): report the shared cost this run consumed without
    // paying it, so batch/serving tasks stay cost-comparable.
    ses_->init_shared = true;
    ses_->shared_init_sim_ns =
        reuse_src->shared_sim_ns +
        (gram_reuse ? reuse_src->gram_sim_ns : 0);
  } else {
    // Persistent pools carry spare blocks + a remap table so single-block
    // media failures can be repaired in place instead of restarting.
    nvm::PoolOptions pool_opts;
    if (options_.persistence != PersistenceMode::kNone) {
      pool_opts.spare_blocks =
          pool_size >= (1ull << 20) ? 64
                                    : (pool_size >= (64ull << 10) ? 8 : 0);
    }
    NTADOC_ASSIGN_OR_RETURN(
        auto pool, nvm::NvmPool::Create(device_, pool_base, pool_size,
                                        pool_opts));
    st->pool.emplace(std::move(pool));
    NTADOC_ASSIGN_OR_RETURN(catalog_off, st->pool->Alloc(sizeof(Catalog), 64));

    // Pruning with NVM pool management (Algorithm 1).
    NTADOC_ASSIGN_OR_RETURN(
        st->dag, BuildPrunedDag(grammar, &*st->pool, options_.enable_pruning,
                                &ses_->run_info.prune));
    if (ses_->batch_shared) {
      ses_->batch_shared->pool_base = pool_base;
      ses_->batch_shared->catalog_off = catalog_off;
      ses_->batch_shared->dag_top = st->pool->top();
      ses_->batch_shared->dag = st->dag;
      ses_->batch_shared->prune = ses_->run_info.prune;
      ses_->batch_shared->gram_valid = false;
    }
  }
  cat.rule_meta_off = st->dag.rule_meta.offset();
  cat.seg_meta_off = st->dag.seg_meta.offset();
  cat.payload_begin = st->dag.payload_begin;
  cat.payload_end = st->dag.payload_end;

  const uint32_t nr = grammar.NumRules();
  const uint32_t nf = grammar.num_files;

  // Host-side adjacency and per-rule item counts for the estimator.
  DagChildren children;
  std::vector<uint64_t> own_words;
  std::vector<uint64_t> own_len;  // occurrences, not distinct
  std::vector<uint64_t> explen;
  std::vector<uint64_t> word_ub;
  std::vector<uint64_t> seg_word_ub;
  std::vector<uint64_t> seg_explen;
  std::vector<uint64_t> seg_own_distinct;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> seg_children;
  if (batch_reuse) {
    // The scratch depends only on the grammar and the pruning setting,
    // never on the task — reuse it without touching the device.
    children = reuse_src->children;
    own_words = reuse_src->own_words;
    own_len = reuse_src->own_len;
    explen = reuse_src->explen;
    word_ub = reuse_src->word_ub;
    seg_children = reuse_src->seg_children;
    seg_explen = reuse_src->seg_explen;
    seg_word_ub = reuse_src->seg_word_ub;
    seg_own_distinct = reuse_src->seg_own_distinct;
  } else {
    children.resize(nr);
    own_words.assign(nr, 0);
    own_len.assign(nr, 0);
    for (uint32_t r = 1; r < nr; ++r) {
      NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
      const DecodedPayload p = ReadPayloadCached(st, /*segment=*/false, r);
      children[r] = p.subrules;
      if (!st->dag.pruned) CombineEntries(&children[r]);
      // Distinct own words (pruned payloads are already unique).
      if (st->dag.pruned) {
        own_words[r] = p.words.size();
        for (const auto& [w, f] : p.words) {
          (void)w;
          own_len[r] += f;
        }
      } else {
        auto w = p.words;
        own_len[r] = w.size();
        CombineEntries(&w);
        own_words[r] = w.size();
      }
    }
    // Poisoned payload reads above would feed garbage rule ids into the
    // estimator's index arithmetic; stop here if any read failed.
    NTADOC_RETURN_IF_ERROR(CheckMediaErrors());

    // Expansion lengths (occurrence counts), children first: a structure
    // can never hold more entries than the expansion has tokens, so these
    // sharpen the distinct-item bounds below.
    explen.assign(nr, 0);
    for (auto it = st->dag.layout_order.rbegin();
         it != st->dag.layout_order.rend(); ++it) {
      const uint32_t r = *it;
      if (r == 0) continue;
      explen[r] = own_len[r];
      for (const auto& [child, freq] : children[r]) {
        explen[r] += explen[child] * freq;
      }
    }

    // Bottom-up summation (Algorithm 2): distinct-word upper bounds,
    // capped by the expansion length and the dictionary size.
    word_ub = BottomUpSummation(children, own_words);
    for (uint32_t r = 0; r < nr; ++r) {
      word_ub[r] = std::min<uint64_t>(
          std::min<uint64_t>(word_ub[r], grammar.dict_size),
          r == 0 ? word_ub[r] : std::max<uint64_t>(explen[r], 1));
    }

    // Segment bounds, capped by the segment's expansion length.
    seg_word_ub.assign(nf, 0);
    seg_explen.assign(nf, 0);
    seg_own_distinct.assign(nf, 0);
    seg_children.assign(nf, {});
    for (uint32_t f = 0; f < nf; ++f) {
      NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
      DecodedPayload p = ReadPayloadCached(st, /*segment=*/true, f);
      NTADOC_RETURN_IF_ERROR(CheckMediaErrors());
      if (!st->dag.pruned) {
        CombineEntries(&p.subrules);
        CombineEntries(&p.words);
      }
      seg_children[f] = p.subrules;
      seg_own_distinct[f] = p.words.size();
      uint64_t own = 0;
      for (const auto& [w, freq] : p.words) {
        (void)w;
        own += freq;
      }
      seg_explen[f] = own;
      for (const auto& [child, freq] : p.subrules) {
        seg_explen[f] += explen[child] * freq;
      }
      seg_word_ub[f] = std::min<uint64_t>(
          std::min<uint64_t>(
              SpanUpperBound(p.subrules, p.words.size(), word_ub),
              grammar.dict_size),
          std::max<uint64_t>(seg_explen[f], 1));
    }
    if (ses_->batch_shared) {
      ses_->batch_shared->children = children;
      ses_->batch_shared->own_words = own_words;
      ses_->batch_shared->own_len = own_len;
      ses_->batch_shared->explen = explen;
      ses_->batch_shared->word_ub = word_ub;
      ses_->batch_shared->seg_children = seg_children;
      ses_->batch_shared->seg_explen = seg_explen;
      ses_->batch_shared->seg_word_ub = seg_word_ub;
      ses_->batch_shared->seg_own_distinct = seg_own_distinct;
      ses_->batch_shared->valid = true;
      // Everything charged since init_sim_t0 is the shared portion
      // (container load, DAG build, estimator reads); per-task costs
      // start after this capture point.
      ses_->batch_shared->shared_sim_ns =
          device_->clock().NowNanos() - init_sim_t0;
    }
  }

  // Sequence support: local boundary windows per rule / segment, stored
  // as pool payloads (order information preserved via head/tail
  // preprocessing — Section IV-D).
  std::vector<uint64_t> gram_ub;
  if (gram_reuse) {
    // The gram lists sit directly after the DAG in the shared prefix,
    // written by an earlier task of the same batch for the same n;
    // re-attach to them instead of scanning the grammar again.
    st->local_gram_meta = NvmVector<GramMeta>::Attach(
        &*st->pool, reuse_src->local_gram_meta_off, nr, nr);
    st->seg_gram_meta = NvmVector<GramMeta>::Attach(
        &*st->pool, reuse_src->seg_gram_meta_off, nf, nf);
    st->gram_begin = reuse_src->gram_begin;
    st->gram_end = reuse_src->gram_end;
    cat.local_gram_meta_off = st->local_gram_meta.offset();
    cat.seg_gram_meta_off = st->seg_gram_meta.offset();
    gram_ub = reuse_src->gram_ub;
  } else if (st->use_local_grams) {
    const uint64_t gram_sim_t0 = device_->clock().NowNanos();
    const tadoc::HeadTailTable ht =
        tadoc::HeadTailTable::Build(grammar, opts.ngram);
    tadoc::WindowScanner scanner(&ht, opts.ngram);
    NTADOC_ASSIGN_OR_RETURN(st->local_gram_meta,
                            NvmVector<GramMeta>::Create(&*st->pool, nr));
    st->local_gram_meta.Resize(nr);
    NTADOC_ASSIGN_OR_RETURN(st->seg_gram_meta,
                            NvmVector<GramMeta>::Create(&*st->pool, nf));
    st->seg_gram_meta.Resize(nf);
    st->gram_begin = st->pool->top();
    std::vector<uint64_t> own_grams(nr, 0);

    auto write_local = [&](std::span<const Symbol> seq)
        -> Result<std::pair<uint64_t, uint64_t>> {
      std::vector<std::pair<NgramKey, uint64_t>> local;
      scanner.Scan(seq, [&](const NgramKey& k) { local.emplace_back(k, 1); });
      SortAndCombine(&local);
      NTADOC_ASSIGN_OR_RETURN(
          const nvm::PoolOffset off,
          st->pool->template AllocArray<GramEntry>(local.size()));
      // One staged bulk store instead of a store per entry; the quantum
      // keeps the charged cost identical to the per-entry loop.
      std::vector<GramEntry> entries;
      entries.reserve(local.size());
      for (const auto& [k, c] : local) entries.push_back(GramEntry{k, c});
      if (!entries.empty()) {
        device_->WriteBytes(off, entries.data(),
                            entries.size() * sizeof(GramEntry),
                            /*quantum=*/sizeof(GramEntry));
      }
      return std::make_pair(static_cast<uint64_t>(off),
                            static_cast<uint64_t>(local.size()));
    };

    for (uint32_t r : st->dag.layout_order) {
      if (r == 0) continue;
      NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
      NTADOC_ASSIGN_OR_RETURN(const auto loc, write_local(grammar.rules[r]));
      st->local_gram_meta.Set(r, GramMeta{loc.first, loc.second});
      own_grams[r] = loc.second;
    }
    // Root segments.
    const auto& root = grammar.rules[0];
    uint32_t begin = 0;
    uint32_t f = 0;
    for (uint32_t i = 0; i < root.size(); ++i) {
      if (IsWord(root[i]) && IsFileSep(root[i])) {
        NTADOC_ASSIGN_OR_RETURN(
            const auto loc,
            write_local(std::span<const Symbol>(root.data() + begin,
                                                i - begin)));
        st->seg_gram_meta.Set(f, GramMeta{loc.first, loc.second});
        begin = i + 1;
        ++f;
      }
    }
    st->gram_end = st->pool->top();
    cat.local_gram_meta_off = st->local_gram_meta.offset();
    cat.seg_gram_meta_off = st->seg_gram_meta.offset();
    gram_ub = BottomUpSummation(children, own_grams);
    for (uint32_t r = 1; r < nr; ++r) {
      gram_ub[r] = std::min<uint64_t>(gram_ub[r],
                                      std::max<uint64_t>(explen[r], 1));
    }
    // Written right after the DAG (nothing allocated between), so the
    // reusable prefix can extend over the gram region for later sequence
    // tasks of this batch.
    if (ses_->batch_shared) {
      ses_->batch_shared->gram_valid = ses_->batch_shared->valid;
      ses_->batch_shared->gram_ngram = opts.ngram;
      ses_->batch_shared->gram_top = st->pool->top();
      ses_->batch_shared->local_gram_meta_off = st->local_gram_meta.offset();
      ses_->batch_shared->seg_gram_meta_off = st->seg_gram_meta.offset();
      ses_->batch_shared->gram_begin = st->gram_begin;
      ses_->batch_shared->gram_end = st->gram_end;
      ses_->batch_shared->gram_ub = gram_ub;
      ses_->batch_shared->gram_sim_ns =
          device_->clock().NowNanos() - gram_sim_t0;
    }
  }

  // Traversal structures, allocated once at their estimated bounds.
  if (st->use_queue) {
    NTADOC_ASSIGN_OR_RETURN(st->queue,
                            NvmVector<uint32_t>::Create(&*st->pool, nr));
    st->queue.Resize(nr);
    NTADOC_ASSIGN_OR_RETURN(st->indeg,
                            NvmVector<uint32_t>::Create(&*st->pool, nr));
    st->indeg.Resize(nr);
    cat.queue_off = st->queue.offset();
    cat.indeg_off = st->indeg.offset();
  }

  const uint64_t small = options_.enable_summation ? 0 : 8;
  uint64_t total_tokens = 0;
  for (uint64_t e : seg_explen) total_tokens += e;

  // Tight per-file bound: sum of per-rule item counts over the file's
  // *reachable rule set* (a rule contributes distinct items once, no
  // matter how often it occurs).
  std::vector<uint8_t> reach_seen(nr, 0);
  uint64_t reach_epoch_guard = 0;
  (void)reach_epoch_guard;
  auto reachable_sum =
      [&](const std::vector<std::pair<uint32_t, uint32_t>>& roots,
          const std::vector<uint64_t>& own) {
        std::vector<uint32_t> stack;
        std::vector<uint32_t> visited;
        uint64_t total = 0;
        for (const auto& [c, f] : roots) {
          (void)f;
          if (!reach_seen[c]) {
            reach_seen[c] = 1;
            stack.push_back(c);
            visited.push_back(c);
          }
        }
        while (!stack.empty()) {
          const uint32_t r = stack.back();
          stack.pop_back();
          total += own[r];
          for (const auto& [c, f] : children[r]) {
            (void)f;
            if (!reach_seen[c]) {
              reach_seen[c] = 1;
              stack.push_back(c);
              visited.push_back(c);
            }
          }
        }
        for (uint32_t v : visited) reach_seen[v] = 0;
        return total;
      };
  if (st->use_word_table) {
    uint64_t expected = 0;
    for (uint64_t ub : seg_word_ub) expected += ub;
    expected = std::min<uint64_t>(
        std::min<uint64_t>(expected, grammar.dict_size), total_tokens);
    NTADOC_ASSIGN_OR_RETURN(
        st->word_table,
        WordTable::Create(&*st->pool, small ? small : expected));
    cat.word_status = st->word_table.status_offset();
    cat.word_keys = st->word_table.keys_offset();
    cat.word_vals = st->word_table.values_offset();
    cat.word_cap = st->word_table.capacity();
  }
  if (st->use_gram_table) {
    uint64_t expected = 0;
    // Borrowed meta spans, charged like the per-element loops they
    // replace; an unreadable block contributes 0 and the media check at
    // the end of InitPhase turns the poisoned estimate into a salvage.
    if (nr > 1) {
      if (auto span = st->local_gram_meta.ReadSpan(1, nr - 1); span.ok()) {
        for (uint32_t r = 0; r + 1 < nr; ++r) expected += (*span)[r].count;
      }
    }
    if (nf > 0) {
      if (auto span = st->seg_gram_meta.ReadSpan(0, nf); span.ok()) {
        for (uint32_t f = 0; f < nf; ++f) expected += (*span)[f].count;
      }
    }
    expected = std::min<uint64_t>(expected, total_tokens);
    NTADOC_ASSIGN_OR_RETURN(
        st->gram_table,
        GramTable::Create(&*st->pool, small ? small : expected));
    cat.gram_status = st->gram_table.status_offset();
    cat.gram_keys = st->gram_table.keys_offset();
    cat.gram_vals = st->gram_table.values_offset();
    cat.gram_cap = st->gram_table.capacity();
  }
  if (st->use_file_table) {
    uint64_t expected = 0;
    for (uint32_t f = 0; f < nf; ++f) {
      uint64_t root_items = 0;
      if (batch_reuse) {
        // The shared scratch already holds this segment's combined
        // adjacency and distinct-word count; no device reads needed.
        root_items =
            reachable_sum(seg_children[f], own_words) + seg_own_distinct[f];
      } else {
        DecodedPayload p = ReadPayloadCached(st, /*segment=*/true, f);
        NTADOC_RETURN_IF_ERROR(CheckMediaErrors());
        if (!st->dag.pruned) {
          CombineEntries(&p.subrules);
          CombineEntries(&p.words);
        }
        root_items = reachable_sum(p.subrules, own_words) + p.words.size();
      }
      const uint64_t file_bound = std::min<uint64_t>(
          std::min<uint64_t>(root_items, seg_word_ub[f]),
          std::max<uint64_t>(seg_explen[f], 1));
      expected = std::max(expected, file_bound);
    }
    NTADOC_ASSIGN_OR_RETURN(
        st->file_table,
        WordTable::Create(&*st->pool, small ? small : expected));
    cat.ftbl_status = st->file_table.status_offset();
    cat.ftbl_keys = st->file_table.keys_offset();
    cat.ftbl_vals = st->file_table.values_offset();
    cat.ftbl_cap = st->file_table.capacity();
  }
  if (st->use_file_gram_table) {
    std::vector<uint64_t> own_grams_counts(nr, 0);
    if (nr > 1) {
      if (auto span = st->local_gram_meta.ReadSpan(1, nr - 1); span.ok()) {
        for (uint32_t r = 1; r < nr; ++r) {
          own_grams_counts[r] = (*span)[r - 1].count;
        }
      }
    }
    // The per-file loop below is host-only (reachable_sum walks host
    // adjacency), so hoisting the segment metas into one span keeps the
    // device access sequence unchanged.
    std::vector<uint64_t> seg_counts(nf, 0);
    if (nf > 0) {
      if (auto span = st->seg_gram_meta.ReadSpan(0, nf); span.ok()) {
        for (uint32_t f = 0; f < nf; ++f) seg_counts[f] = (*span)[f].count;
      }
    }
    uint64_t expected = 0;
    for (uint32_t f = 0; f < nf; ++f) {
      const uint64_t file_bound = std::min<uint64_t>(
          reachable_sum(seg_children[f], own_grams_counts) + seg_counts[f],
          std::max<uint64_t>(seg_explen[f], 1));
      expected = std::max(expected, file_bound);
    }
    NTADOC_ASSIGN_OR_RETURN(
        st->file_gram_table,
        GramTable::Create(&*st->pool, small ? small : expected));
    cat.fgram_status = st->file_gram_table.status_offset();
    cat.fgram_keys = st->file_gram_table.keys_offset();
    cat.fgram_vals = st->file_gram_table.values_offset();
    cat.fgram_cap = st->file_gram_table.capacity();
  }
  if (st->use_word_lists) {
    NTADOC_ASSIGN_OR_RETURN(st->word_list_meta,
                            NvmVector<ListMeta>::Create(&*st->pool, nr));
    st->word_list_meta.Resize(nr);
    for (uint32_t r = 0; r < nr; ++r) {
      const uint64_t capn =
          r == 0 ? 0
                 : (options_.enable_summation
                        ? word_ub[r]
                        : std::min<uint64_t>(8, std::max<uint64_t>(
                                                    1, word_ub[r])));
      nvm::PoolOffset off = nvm::kNullPoolOffset;
      if (capn > 0) {
        NTADOC_ASSIGN_OR_RETURN(
            off, st->pool->template AllocArray<WordEntry>(capn));
      }
      st->word_list_meta.Set(r, ListMeta{off, capn, 0});
    }
    cat.word_list_meta_off = st->word_list_meta.offset();
  }
  if (st->use_gram_lists) {
    NTADOC_ASSIGN_OR_RETURN(st->gram_list_meta,
                            NvmVector<ListMeta>::Create(&*st->pool, nr));
    st->gram_list_meta.Resize(nr);
    for (uint32_t r = 0; r < nr; ++r) {
      const uint64_t capn =
          r == 0 ? 0
                 : (options_.enable_summation
                        ? gram_ub[r]
                        : std::min<uint64_t>(8, std::max<uint64_t>(
                                                    1, gram_ub[r])));
      nvm::PoolOffset off = nvm::kNullPoolOffset;
      if (capn > 0) {
        NTADOC_ASSIGN_OR_RETURN(
            off, st->pool->template AllocArray<GramEntry>(capn));
      }
      st->gram_list_meta.Set(r, ListMeta{off, capn, 0});
    }
    cat.gram_list_meta_off = st->gram_list_meta.offset();
  }

  NTADOC_ASSIGN_OR_RETURN(st->cursor_off,
                          st->pool->Alloc(sizeof(CursorSlot), 64));
  cat.cursor_off = st->cursor_off;
  CursorSlot fresh{kCursorMagic, 0, 0, 0, 0};
  fresh.checksum = CursorChecksum(fresh);
  device_->Write(st->cursor_off, fresh);

  NTADOC_ASSIGN_OR_RETURN(const uint64_t integrity_off,
                          st->pool->Alloc(sizeof(InitIntegrity), 64));
  cat.integrity_off = integrity_off;
  st->integrity_off = integrity_off;
  cat.gram_begin = st->gram_begin;
  cat.gram_end = st->gram_end;

  cat.checksum = CatalogChecksum(cat);
  device_->Write(catalog_off, cat);

  // Seal the init phase: hash everything the traversal never mutates so
  // recovery can prove the re-attached state is bit-exact.
  InitIntegrity ii{};
  if (options_.persistence != PersistenceMode::kNone) {
    ii.magic = kIntegrityMagic;
    ii.init_top = st->pool->top();
    const auto hash =
        HashImmutableRegion(device_, pool_base + 64, ii.init_top,
                            CollectMutableExtents(*st, integrity_off));
    if (hash.ok()) {
      ii.region_hash = hash.value();
    } else if (ses_->degraded) {
      // Part of the immutable region is permanently unreadable, so no
      // honest hash exists. Seal with an intentionally invalid record:
      // a later attach can never trust a degraded init.
      ii.magic = 0;
      ++ses_->degraded_events;
    } else {
      return hash.status();
    }
    ii.checksum = IntegrityChecksum(ii);
    device_->Write(integrity_off, ii);
  }

  NTADOC_RETURN_IF_ERROR(SetupTiering(st, catalog_off, /*fresh=*/true));

  // Never commit an init phase built from poisoned reads.
  NTADOC_RETURN_IF_ERROR(CheckMediaErrors());

  if (options_.crash_in_init) {
    device_->SimulateCrash();
    return Status::Internal("injected crash during initialization");
  }

  // Phase boundary: persist everything written so far, then the marker,
  // then the replicated metadata (whose images must reflect the
  // committed state they will restore).
  if (options_.persistence != PersistenceMode::kNone) {
    st->pool->PersistAll();
    CommitPhase(1);
    WriteMetaMirror(device_, st->signature, pool_base, cat, ii);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Traversal phase
// ---------------------------------------------------------------------------

namespace {

/// Reads a bottom-up list back into a host vector through one zero-copy
/// borrowed span (bulk-charged, same as the staging read it replaces).
template <typename Entry, typename Vec>
void ReadList(nvm::NvmDevice* device, const ListMeta& m, Vec* out) {
  // Corrupt descriptor: read nothing; the caller's media-error check
  // turns the poisoned descriptor read into DataLoss. The alignment
  // check keeps a torn descriptor from producing a misaligned borrow.
  if (m.off > device->capacity() ||
      m.size > (device->capacity() - m.off) / sizeof(Entry) ||
      m.off % alignof(Entry) != 0) {
    out->clear();
    return;
  }
  if (m.size == 0) {
    out->clear();
    return;
  }
  auto span = device->TryReadTypedSpan<Entry>(m.off, m.size);
  if (!span.ok()) {
    // Unreadable media: empty result, error counter already bumped — the
    // caller's per-step media check fails and the run salvages.
    out->clear();
    return;
  }
  const Entry* buf = *span;
  out->resize(m.size);
  for (uint64_t i = 0; i < m.size; ++i) {
    if constexpr (std::is_same_v<Entry, WordEntry>) {
      (*out)[i] = {buf[i].word, buf[i].count};
    } else {
      (*out)[i] = {buf[i].key, buf[i].count};
    }
  }
}

}  // namespace

Result<AnalyticsOutput> NTadocEngine::TraversalPhase(
    Task task, const AnalyticsOptions& opts, State* st) {
  auto result = [&]() -> Result<AnalyticsOutput> {
    if (st->strategy == TraversalStrategy::kBottomUp) {
      return BottomUp(task, opts, st);
    }
    if (tadoc::IsPerFileTask(task)) {
      return TopDownPerFile(task, opts, st);
    }
    return TopDownGlobal(task, opts, st);
  }();
  if (!result.ok() && result.status().code() == StatusCode::kDataLoss &&
      options_.persistence == PersistenceMode::kOperation &&
      options_.commit_interval > 1 && st->log && st->cursor_off != 0) {
    AbortToPhaseStart(device_, &*st->log, st->cursor_off);
  }
  return result;
}

Result<AnalyticsOutput> NTadocEngine::TopDownGlobal(
    Task task, const AnalyticsOptions& opts, State* st) {
  (void)opts;  // global tasks take no task parameters beyond the defaults
  const uint32_t nr = st->dag.num_rules;
  const uint32_t nf = st->dag.num_files;
  const bool op = options_.persistence == PersistenceMode::kOperation;
  StepWriter writer(device_, op ? st->tx_log() : nullptr,
                    options_.commit_interval, &ses_->run_info);

  // Resume point (operation level) or fresh working state.
  CursorSlot cur = op ? ReadCursor(device_, st->cursor_off)
                      : CursorSlot{kCursorMagic, 0, 0, 0, 0};
  if (cur.stage == 3) cur.stage = 0;  // stale completed run: start over
  // A checksummed-but-impossible cursor means the persisted state lies.
  if (cur.stage > 3 || (cur.stage == 1 && (cur.a > nf || cur.b > nr)) ||
      (cur.stage == 2 && (cur.a > cur.b || cur.b > nr))) {
    return Status::DataLoss("traversal cursor out of bounds");
  }
  uint64_t seg_start = 0;
  if (cur.stage == 0) {
    // Working state: in-degrees from metadata, weights zeroed, counters
    // cleared, queue empty (phase isolation: traversal-phase data is
    // rebuilt from init-phase data).
    bool weights_reset = false;
    for (uint32_t r = 0; r < nr; ++r) {
      RuleMeta m = st->dag.rule_meta.Get(r);
      st->indeg.Set(r, m.in_degree);
      if (m.weight != 0) {
        m.weight = 0;
        st->dag.rule_meta.Set(r, m);
        weights_reset = true;
        st->rule_meta_dirty = true;
      }
    }
    if (st->use_word_table) st->word_table.Clear();
    if (st->use_gram_table) st->gram_table.Clear();
    st->qhead = st->qtail = 0;
    if (op) {
      // The reset must be durable before the cursor says "stage 1", or a
      // crash would resume against rolled-back working state. On a fresh
      // run the weights are already zero and Clear() touches only the
      // status buffers, so flush exactly what the reset dirtied.
      device_->FlushRange(st->indeg.offset(), nr * sizeof(uint32_t));
      if (weights_reset) {
        device_->FlushRange(st->dag.rule_meta.offset(), nr * sizeof(RuleMeta));
      }
      if (st->use_word_table) st->word_table.PersistStatus();
      if (st->use_gram_table) st->gram_table.PersistStatus();
      device_->Drain();
      writer.Begin();
      StageCursor(&writer, st->cursor_off, 1, 0, 0);
      NTADOC_RETURN_IF_ERROR(CommitWithCheckpoint(device_, st, &writer));
      NTADOC_RETURN_IF_ERROR(MaybeMigrate(st));
    }
  } else if (cur.stage == 1) {
    seg_start = cur.a;
    st->qhead = 0;
    st->qtail = cur.b;
    ses_->run_info.resumed_at_step = cur.a;
  } else if (cur.stage == 2) {
    seg_start = nf;
    st->qhead = cur.a;
    st->qtail = cur.b;
    ses_->run_info.resumed_at_step = cur.a;
  }

  const uint64_t weight_field = offsetof(RuleMeta, weight);

  // One traversal step: apply a payload's edges with multiplier `wr`.
  auto apply_edges = [&](const DecodedPayload& payload, uint64_t wr,
                         StepWriter* w) -> Status {
    auto subs = payload.subrules;
    if (!st->dag.pruned) CombineEntries(&subs);
    for (const auto& [child, freq] : subs) {
      if (child == 0 || child >= nr) {
        return Status::DataLoss("payload references rule out of range");
      }
      const RuleMeta cm = st->dag.rule_meta.Get(child);
      const uint64_t new_weight = cm.weight + wr * freq;
      w->WriteValue(st->dag.rule_meta.ElementOffset(child) + weight_field,
                    new_weight);
      st->rule_meta_dirty = true;
      const uint32_t dec = st->dag.pruned ? 1u : freq;
      const uint32_t in = st->indeg.Get(child);
      if (in < dec) {
        return Status::DataLoss("in-degree underflow (corrupt metadata)");
      }
      w->WriteValue(st->indeg.ElementOffset(child), in - dec);
      if (in - dec == 0) {
        if (st->qtail >= nr) {
          return Status::DataLoss("traversal queue overflow (corrupt state)");
        }
        w->WriteValue(st->queue.ElementOffset(st->qtail),
                      static_cast<uint32_t>(child));
        ++st->qtail;
      }
    }
    return Status::OK();
  };

  auto add_words = [&](const DecodedPayload& payload, uint64_t wr,
                       StepWriter* w) -> Status {
    if (!st->use_word_table) return Status::OK();
    auto words = payload.words;
    if (!st->dag.pruned) CombineEntries(&words);
    for (const auto& [word, freq] : words) {
      Status s;
      if (w->epoch_mode()) {
        s = st->word_table.AddDeltaVia(word, wr * freq, w);
      } else if (w->transactional()) {
        s = st->word_table.AddDeltaTx(word, wr * freq, w->log(),
                                      &st->word_pending);
      } else {
        s = st->word_table.AddDelta(word, wr * freq);
      }
      if (s.code() == StatusCode::kResourceExhausted) {
        NTADOC_RETURN_IF_ERROR(GrowTable(&st->word_table, &*st->pool,
                                          &ses_->run_info.counter_rebuilds));
        s = st->word_table.AddDelta(word, wr * freq);
      }
      NTADOC_RETURN_IF_ERROR(s);
    }
    return Status::OK();
  };

  auto add_grams = [&](const GramMeta& gm, uint64_t wr,
                       StepWriter* w) -> Status {
    if (!st->use_gram_table || gm.count == 0) return Status::OK();
    if (gm.off > device_->capacity() ||
        gm.count > (device_->capacity() - gm.off) / sizeof(GramEntry) ||
        gm.off % alignof(GramEntry) != 0) {
      return Status::DataLoss("gram payload descriptor out of bounds");
    }
    // Zero-copy borrow of the immutable gram payload. The table/log
    // writes below never target the init-phase payload region (that is
    // the integrity-hash invariant), so the borrow stays valid across
    // the whole loop.
    NTADOC_ASSIGN_OR_RETURN(
        const GramEntry* buf,
        device_->TryReadTypedSpan<GramEntry>(gm.off, gm.count));
    for (uint64_t i = 0; i < gm.count; ++i) {
      const GramEntry e = buf[i];
      Status s;
      if (w->epoch_mode()) {
        s = st->gram_table.AddDeltaVia(e.key, wr * e.count, w);
      } else if (w->transactional()) {
        s = st->gram_table.AddDeltaTx(e.key, wr * e.count, w->log(),
                                      &st->gram_pending);
      } else {
        s = st->gram_table.AddDelta(e.key, wr * e.count);
      }
      if (s.code() == StatusCode::kResourceExhausted) {
        NTADOC_RETURN_IF_ERROR(GrowTable(&st->gram_table, &*st->pool,
                                          &ses_->run_info.counter_rebuilds));
        s = st->gram_table.AddDelta(e.key, wr * e.count);
      }
      NTADOC_RETURN_IF_ERROR(s);
    }
    return Status::OK();
  };

  // Stage 1: seed from the root's file segments (weight 1 each).
  for (uint64_t f = seg_start; f < nf; ++f) {
    writer.Begin();
    st->word_pending.Clear();
    st->gram_pending.Clear();
    const DecodedPayload payload =
        ReadPayloadCached(st, /*segment=*/true, static_cast<uint32_t>(f));
    NTADOC_RETURN_IF_ERROR(apply_edges(payload, 1, &writer));
    NTADOC_RETURN_IF_ERROR(add_words(payload, 1, &writer));
    if (st->use_gram_table) {
      NTADOC_RETURN_IF_ERROR(add_grams(
          st->seg_gram_meta.Get(static_cast<uint32_t>(f)), 1, &writer));
    }
    NTADOC_RETURN_IF_ERROR(CheckMediaErrors());
    if (op) StageCursor(&writer, st->cursor_off, 1, f + 1, st->qtail);
    ++ses_->run_info.traversal_steps;
    NTADOC_RETURN_IF_ERROR(MaybeInjectCrash(st));
    NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
    NTADOC_RETURN_IF_ERROR(CommitWithCheckpoint(device_, st, &writer));
    NTADOC_RETURN_IF_ERROR(MaybeMigrate(st));
  }

  // Stage 2: Kahn queue over the pruned DAG.
  while (st->qhead < st->qtail) {
    writer.Begin();
    st->word_pending.Clear();
    st->gram_pending.Clear();
    const uint32_t r = st->queue.Get(st->qhead);
    if (r == 0 || r >= nr) {
      return Status::DataLoss("traversal queue entry out of range");
    }
    ++st->qhead;
    const uint64_t wr = st->dag.rule_meta.Get(r).weight;
    const DecodedPayload payload = ReadPayloadCached(st, /*segment=*/false, r);
    NTADOC_RETURN_IF_ERROR(apply_edges(payload, wr, &writer));
    NTADOC_RETURN_IF_ERROR(add_words(payload, wr, &writer));
    if (st->use_gram_table) {
      NTADOC_RETURN_IF_ERROR(add_grams(st->local_gram_meta.Get(r), wr,
                                       &writer));
    }
    NTADOC_RETURN_IF_ERROR(CheckMediaErrors());
    if (op) StageCursor(&writer, st->cursor_off, 2, st->qhead, st->qtail);
    ++ses_->run_info.traversal_steps;
    NTADOC_RETURN_IF_ERROR(MaybeInjectCrash(st));
    NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
    NTADOC_RETURN_IF_ERROR(CommitWithCheckpoint(device_, st, &writer));
    NTADOC_RETURN_IF_ERROR(MaybeMigrate(st));
  }

  // Results.
  AnalyticsOutput out;
  out.task = task;
  if (task == Task::kWordCount || task == Task::kSort) {
    tadoc::WordCountResult counts;
    st->word_table.Extract(&counts);
    std::sort(counts.begin(), counts.end());
    if (task == Task::kSort) {
      out.sorted_words = CanonicalSort(counts, corpus_->dict);
    } else {
      out.word_counts = std::move(counts);
    }
  } else {  // sequence count
    std::vector<std::pair<NgramKey, uint64_t>> counts;
    st->gram_table.Extract(&counts);
    std::sort(counts.begin(), counts.end());
    out.sequence_counts = std::move(counts);
  }
  // The extracted counters must be real data, not poison fill.
  NTADOC_RETURN_IF_ERROR(CheckMediaErrors());

  // Phase boundary. The final commit is forced: the done-cursor (and any
  // open epoch) must be durable before the phase marker advances.
  if (op) {
    writer.Begin();
    StageCursor(&writer, st->cursor_off, 3, 0, 0);
    NTADOC_RETURN_IF_ERROR(
        CommitWithCheckpoint(device_, st, &writer, /*force=*/true));
  } else if (options_.persistence == PersistenceMode::kPhase) {
    PersistTraversalState(device_, st);
  }
  CommitPhase(2);
  return out;
}

Result<AnalyticsOutput> NTadocEngine::TopDownPerFile(
    Task task, const AnalyticsOptions& opts, State* st) {
  const uint32_t nf = st->dag.num_files;
  const bool rii = task == Task::kRankedInvertedIndex;
  AnalyticsOutput out;
  out.task = task;
  if (task == Task::kTermVector) out.term_vectors.resize(nf);
  std::vector<std::vector<uint32_t>> postings;
  if (task == Task::kInvertedIndex) {
    postings.resize(corpus_->grammar.dict_size);
  }
  std::unordered_map<NgramKey, uint32_t, NgramKeyHash> gram_slot;
  std::vector<NgramKey> gram_keys;
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> gram_postings;

  // Per-file top-down traversal: rule weights live in the pool-resident
  // metadata (the paper's "weight of the rule"), so every file walks the
  // whole DAG on NVM — zeroing, seeding and propagating weights rule by
  // rule. This is exactly why top-down degrades with many files
  // (Section VI-E). Per-file counters live in the shared pool table,
  // cleared per file (a restarted file is idempotent).
  const uint64_t weight_field = offsetof(RuleMeta, weight);
  auto read_weight = [&](uint32_t r) {
    return device_->Read<uint64_t>(st->dag.rule_meta.ElementOffset(r) +
                                   weight_field);
  };
  auto write_weight = [&](uint32_t r, uint64_t w) {
    device_->Write(st->dag.rule_meta.ElementOffset(r) + weight_field, w);
    st->rule_meta_dirty = true;
  };

  for (uint32_t f = 0; f < nf; ++f) {
    // Zero the weights of every rule for this file's walk.
    for (uint32_t r : st->dag.layout_order) {
      if (r != 0 && read_weight(r) != 0) write_weight(r, 0);
    }
    if (rii) {
      st->file_gram_table.Clear();
    } else {
      st->file_table.Clear();
    }

    auto add_word = [&](uint32_t word, uint64_t delta) -> Status {
      Status s = st->file_table.AddDelta(word, delta);
      if (s.code() == StatusCode::kResourceExhausted) {
        NTADOC_RETURN_IF_ERROR(GrowTable(&st->file_table, &*st->pool,
                                          &ses_->run_info.counter_rebuilds));
        s = st->file_table.AddDelta(word, delta);
      }
      return s;
    };
    auto add_gram_payload = [&](const GramMeta& gm,
                                uint64_t wr) -> Status {
      if (gm.count == 0) return Status::OK();
      if (gm.off > device_->capacity() ||
          gm.count > (device_->capacity() - gm.off) / sizeof(GramEntry) ||
          gm.off % alignof(GramEntry) != 0) {
        return Status::DataLoss("gram payload descriptor out of bounds");
      }
      // Zero-copy borrow (see add_grams in TopDownGlobal): the counter
      // writes never touch the immutable payload region.
      NTADOC_ASSIGN_OR_RETURN(
          const GramEntry* buf,
          device_->TryReadTypedSpan<GramEntry>(gm.off, gm.count));
      for (uint64_t i = 0; i < gm.count; ++i) {
        const GramEntry e = buf[i];
        Status s = st->file_gram_table.AddDelta(e.key, wr * e.count);
        if (s.code() == StatusCode::kResourceExhausted) {
          NTADOC_RETURN_IF_ERROR(GrowTable(&st->file_gram_table, &*st->pool,
                                            &ses_->run_info.counter_rebuilds));
          s = st->file_gram_table.AddDelta(e.key, wr * e.count);
        }
        NTADOC_RETURN_IF_ERROR(s);
      }
      return Status::OK();
    };

    // Seed from the file's segment.
    DecodedPayload seg = ReadPayloadCached(st, /*segment=*/true, f);
    if (!st->dag.pruned) {
      CombineEntries(&seg.subrules);
      CombineEntries(&seg.words);
    }
    for (const auto& [child, freq] : seg.subrules) {
      if (child == 0 || child >= st->dag.num_rules) {
        return Status::DataLoss("payload references rule out of range");
      }
      write_weight(child, read_weight(child) + freq);
    }
    if (rii) {
      NTADOC_RETURN_IF_ERROR(add_gram_payload(st->seg_gram_meta.Get(f), 1));
    } else {
      for (const auto& [word, freq] : seg.words) {
        NTADOC_RETURN_IF_ERROR(add_word(word, freq));
      }
    }

    // Propagate through the DAG in layout (topological) order; every
    // rule's weight is checked on NVM whether it participates or not.
    for (uint32_t r : st->dag.layout_order) {
      if (r == 0) continue;
      const uint64_t w = read_weight(r);
      if (w == 0) continue;
      DecodedPayload payload = ReadPayloadCached(st, /*segment=*/false, r);
      if (!st->dag.pruned) {
        CombineEntries(&payload.subrules);
        CombineEntries(&payload.words);
      }
      for (const auto& [child, freq] : payload.subrules) {
        if (child == 0 || child >= st->dag.num_rules) {
          return Status::DataLoss("payload references rule out of range");
        }
        write_weight(child, read_weight(child) + w * freq);
      }
      if (rii) {
        NTADOC_RETURN_IF_ERROR(
            add_gram_payload(st->local_gram_meta.Get(r), w));
      } else {
        for (const auto& [word, freq] : payload.words) {
          NTADOC_RETURN_IF_ERROR(add_word(word, w * freq));
        }
      }
    }

    // Harvest this file's results.
    if (task == Task::kTermVector) {
      tadoc::WordCountResult counts;
      st->file_table.Extract(&counts);
      out.term_vectors[f] = CanonicalTopK(std::move(counts), opts.top_k);
    } else if (task == Task::kInvertedIndex) {
      tadoc::WordCountResult counts;
      st->file_table.Extract(&counts);
      std::sort(counts.begin(), counts.end());
      for (const auto& [w, c] : counts) {
        if (c != 0) postings[w].push_back(f);
      }
    } else {
      std::vector<std::pair<NgramKey, uint64_t>> counts;
      st->file_gram_table.Extract(&counts);
      std::sort(counts.begin(), counts.end());
      for (const auto& [k, c] : counts) {
        if (c == 0) continue;
        auto [it, inserted] = gram_slot.try_emplace(
            k, static_cast<uint32_t>(gram_keys.size()));
        if (inserted) {
          gram_keys.push_back(k);
          gram_postings.emplace_back();
        }
        gram_postings[it->second].emplace_back(f, c);
      }
    }
    NTADOC_RETURN_IF_ERROR(CheckMediaErrors());
    ++ses_->run_info.traversal_steps;
    NTADOC_RETURN_IF_ERROR(MaybeInjectCrash(st));
    NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
  }

  if (task == Task::kInvertedIndex) {
    for (WordId w = compress::kFirstWordId; w < postings.size(); ++w) {
      if (!postings[w].empty()) {
        out.inverted_index.emplace_back(w, std::move(postings[w]));
      }
    }
  } else if (rii) {
    std::vector<uint32_t> order(gram_keys.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return gram_keys[a] < gram_keys[b];
    });
    for (uint32_t idx : order) {
      RankPostings(&gram_postings[idx]);
      out.ranked_index.emplace_back(gram_keys[idx],
                                    std::move(gram_postings[idx]));
    }
  }

  if (options_.persistence == PersistenceMode::kPhase) {
    PersistTraversalState(device_, st);
  }
  CommitPhase(2);
  return out;
}

Result<AnalyticsOutput> NTadocEngine::BottomUp(Task task,
                                               const AnalyticsOptions& opts,
                                               State* st) {
  const uint32_t nr = st->dag.num_rules;
  const uint32_t nf = st->dag.num_files;
  const bool op = options_.persistence == PersistenceMode::kOperation;
  const bool seq = tadoc::IsSequenceTask(task);
  StepWriter writer(device_, op ? st->tx_log() : nullptr,
                    options_.commit_interval, &ses_->run_info);

  CursorSlot cur = op ? ReadCursor(device_, st->cursor_off)
                      : CursorSlot{kCursorMagic, 0, 0, 0, 0};
  if (cur.stage == 3) cur.stage = 0;
  if (cur.stage > 3 || (cur.stage == 1 && cur.a > nr) ||
      (cur.stage == 2 && cur.a > nf)) {
    return Status::DataLoss("traversal cursor out of bounds");
  }
  uint64_t rule_start = 0;
  uint64_t file_start = 0;
  if (cur.stage == 1) {
    rule_start = cur.a;
    ses_->run_info.resumed_at_step = cur.a;
  } else if (cur.stage == 2) {
    rule_start = nr;  // list building complete
    // Per-file host results cannot survive a crash; only global tasks
    // resume mid-aggregation.
    file_start = tadoc::IsPerFileTask(task) ? 0 : cur.a;
    ses_->run_info.resumed_at_step = cur.a;
  } else {
    if (st->use_word_table) st->word_table.Clear();
    if (st->use_gram_table) st->gram_table.Clear();
    if (op) {
      // Same durability requirement as the top-down reset. Clear() only
      // rewrites the slot-status bytes, so only those need a flush.
      if (st->use_word_table) st->word_table.PersistStatus();
      if (st->use_gram_table) st->gram_table.PersistStatus();
      writer.Begin();
      StageCursor(&writer, st->cursor_off, 1, 0, 0);
      NTADOC_RETURN_IF_ERROR(CommitWithCheckpoint(device_, st, &writer));
      NTADOC_RETURN_IF_ERROR(MaybeMigrate(st));
    }
  }

  // ---- Stage 1: per-rule lists, reverse layout order ----
  // layout_order is topological (parents first); children are therefore
  // visited first when iterating from the back.
  for (uint64_t p = rule_start; p + 1 < nr; ++p) {
    const uint32_t r = st->dag.layout_order[nr - 1 - static_cast<uint32_t>(p)];
    if (r == 0) {
      // Root is handled per segment in stage 2; keep step numbering
      // stable by treating it as a no-op step.
      continue;
    }
    writer.Begin();
    DecodedPayload payload = ReadPayloadCached(st, /*segment=*/false, r);
    if (!st->dag.pruned) {
      CombineEntries(&payload.subrules);
      CombineEntries(&payload.words);
    }
    if (!seq) {
      tracked::vector<std::pair<uint32_t, uint64_t>> acc;
      acc.reserve(payload.words.size());
      for (const auto& [w, c] : payload.words) acc.emplace_back(w, c);
      // Pruned payload words are sorted by id already; raw were combined.
      for (const auto& [child, freq] : payload.subrules) {
        if (child == 0 || child >= nr) {
          return Status::DataLoss("payload references rule out of range");
        }
        tracked::vector<std::pair<uint32_t, uint64_t>> child_list;
        ReadList<WordEntry>(device_, st->word_list_meta.Get(child),
                            &child_list);
        MergeSortedCounts(&acc, child_list, freq);
      }
      NTADOC_RETURN_IF_ERROR(WriteList<WordEntry>(
          &st->word_list_meta, &*st->pool, device_, r, acc, &writer,
          options_.enable_summation, &ses_->run_info.counter_rebuilds));
    } else {
      tracked::vector<std::pair<NgramKey, uint64_t>> acc;
      const GramMeta gm = st->local_gram_meta.Get(r);
      if (gm.off > device_->capacity() ||
          gm.count > (device_->capacity() - gm.off) / sizeof(GramEntry) ||
          gm.off % alignof(GramEntry) != 0) {
        return Status::DataLoss("gram payload descriptor out of bounds");
      }
      acc.resize(gm.count);
      if (gm.count > 0) {
        // Zero-copy borrow, fully copied into `acc` before any write.
        NTADOC_ASSIGN_OR_RETURN(
            const GramEntry* buf,
            device_->TryReadTypedSpan<GramEntry>(gm.off, gm.count));
        for (uint64_t i = 0; i < gm.count; ++i) {
          acc[i] = {buf[i].key, buf[i].count};
        }
      }
      for (const auto& [child, freq] : payload.subrules) {
        if (child == 0 || child >= nr) {
          return Status::DataLoss("payload references rule out of range");
        }
        tracked::vector<std::pair<NgramKey, uint64_t>> child_list;
        ReadList<GramEntry>(device_, st->gram_list_meta.Get(child),
                            &child_list);
        MergeSortedCounts(&acc, child_list, freq);
      }
      NTADOC_RETURN_IF_ERROR(WriteList<GramEntry>(
          &st->gram_list_meta, &*st->pool, device_, r, acc, &writer,
          options_.enable_summation, &ses_->run_info.counter_rebuilds));
    }
    NTADOC_RETURN_IF_ERROR(CheckMediaErrors());
    if (op) StageCursor(&writer, st->cursor_off, 1, p + 1, 0);
    ++ses_->run_info.traversal_steps;
    NTADOC_RETURN_IF_ERROR(MaybeInjectCrash(st));
    NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
    NTADOC_RETURN_IF_ERROR(CommitWithCheckpoint(device_, st, &writer));
    NTADOC_RETURN_IF_ERROR(MaybeMigrate(st));
  }

  // ---- Stage 2: per-file aggregation from the root's segments ----
  AnalyticsOutput out;
  out.task = task;
  if (task == Task::kTermVector) out.term_vectors.resize(nf);
  std::vector<std::vector<uint32_t>> postings;
  if (task == Task::kInvertedIndex) {
    postings.resize(corpus_->grammar.dict_size);
  }
  std::unordered_map<NgramKey, uint32_t, NgramKeyHash> gram_slot;
  std::vector<NgramKey> gram_keys;
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> gram_postings;

  for (uint64_t f = file_start; f < nf; ++f) {
    writer.Begin();
    st->word_pending.Clear();
    st->gram_pending.Clear();
    DecodedPayload seg =
        ReadPayloadCached(st, /*segment=*/true, static_cast<uint32_t>(f));
    if (!st->dag.pruned) {
      CombineEntries(&seg.subrules);
      CombineEntries(&seg.words);
    }
    if (!seq) {
      tracked::vector<std::pair<uint32_t, uint64_t>> acc;
      for (const auto& [w, c] : seg.words) acc.emplace_back(w, c);
      for (const auto& [child, freq] : seg.subrules) {
        if (child == 0 || child >= nr) {
          return Status::DataLoss("payload references rule out of range");
        }
        tracked::vector<std::pair<uint32_t, uint64_t>> child_list;
        ReadList<WordEntry>(device_, st->word_list_meta.Get(child),
                            &child_list);
        MergeSortedCounts(&acc, child_list, freq);
      }
      if (task == Task::kWordCount || task == Task::kSort) {
        for (const auto& [w, c] : acc) {
          Status s;
          if (writer.epoch_mode()) {
            s = st->word_table.AddDeltaVia(w, c, &writer);
          } else if (writer.transactional()) {
            s = st->word_table.AddDeltaTx(w, c, writer.log(),
                                          &st->word_pending);
          } else {
            s = st->word_table.AddDelta(w, c);
          }
          if (s.code() == StatusCode::kResourceExhausted) {
            NTADOC_RETURN_IF_ERROR(GrowTable(&st->word_table, &*st->pool,
                                          &ses_->run_info.counter_rebuilds));
            s = st->word_table.AddDelta(w, c);
          }
          NTADOC_RETURN_IF_ERROR(s);
        }
      } else if (task == Task::kTermVector) {
        out.term_vectors[f] = CanonicalTopK(acc, opts.top_k);
      } else {  // inverted index
        for (const auto& [w, c] : acc) {
          if (c != 0) postings[w].push_back(static_cast<uint32_t>(f));
        }
      }
    } else {
      tracked::vector<std::pair<NgramKey, uint64_t>> acc;
      const GramMeta gm = st->seg_gram_meta.Get(static_cast<uint32_t>(f));
      if (gm.off > device_->capacity() ||
          gm.count > (device_->capacity() - gm.off) / sizeof(GramEntry) ||
          gm.off % alignof(GramEntry) != 0) {
        return Status::DataLoss("gram payload descriptor out of bounds");
      }
      acc.resize(gm.count);
      if (gm.count > 0) {
        // Zero-copy borrow, fully copied into `acc` before any write.
        NTADOC_ASSIGN_OR_RETURN(
            const GramEntry* buf,
            device_->TryReadTypedSpan<GramEntry>(gm.off, gm.count));
        for (uint64_t i = 0; i < gm.count; ++i) {
          acc[i] = {buf[i].key, buf[i].count};
        }
      }
      for (const auto& [child, freq] : seg.subrules) {
        if (child == 0 || child >= nr) {
          return Status::DataLoss("payload references rule out of range");
        }
        tracked::vector<std::pair<NgramKey, uint64_t>> child_list;
        ReadList<GramEntry>(device_, st->gram_list_meta.Get(child),
                            &child_list);
        MergeSortedCounts(&acc, child_list, freq);
      }
      if (task == Task::kSequenceCount) {
        for (const auto& [k, c] : acc) {
          Status s;
          if (writer.epoch_mode()) {
            s = st->gram_table.AddDeltaVia(k, c, &writer);
          } else if (writer.transactional()) {
            s = st->gram_table.AddDeltaTx(k, c, writer.log(),
                                          &st->gram_pending);
          } else {
            s = st->gram_table.AddDelta(k, c);
          }
          if (s.code() == StatusCode::kResourceExhausted) {
            NTADOC_RETURN_IF_ERROR(GrowTable(&st->gram_table, &*st->pool,
                                          &ses_->run_info.counter_rebuilds));
            s = st->gram_table.AddDelta(k, c);
          }
          NTADOC_RETURN_IF_ERROR(s);
        }
      } else {  // ranked inverted index
        for (const auto& [k, c] : acc) {
          if (c == 0) continue;
          auto [it, inserted] = gram_slot.try_emplace(
              k, static_cast<uint32_t>(gram_keys.size()));
          if (inserted) {
            gram_keys.push_back(k);
            gram_postings.emplace_back();
          }
          gram_postings[it->second].emplace_back(static_cast<uint32_t>(f),
                                                 c);
        }
      }
    }
    NTADOC_RETURN_IF_ERROR(CheckMediaErrors());
    if (op) StageCursor(&writer, st->cursor_off, 2, f + 1, 0);
    ++ses_->run_info.traversal_steps;
    NTADOC_RETURN_IF_ERROR(MaybeInjectCrash(st));
    NTADOC_RETURN_IF_ERROR(CheckSessionLimits());
    NTADOC_RETURN_IF_ERROR(CommitWithCheckpoint(device_, st, &writer));
    NTADOC_RETURN_IF_ERROR(MaybeMigrate(st));
  }

  // ---- Results ----
  if (task == Task::kWordCount || task == Task::kSort) {
    tadoc::WordCountResult counts;
    st->word_table.Extract(&counts);
    std::sort(counts.begin(), counts.end());
    if (task == Task::kSort) {
      out.sorted_words = CanonicalSort(counts, corpus_->dict);
    } else {
      out.word_counts = std::move(counts);
    }
  } else if (task == Task::kSequenceCount) {
    std::vector<std::pair<NgramKey, uint64_t>> counts;
    st->gram_table.Extract(&counts);
    std::sort(counts.begin(), counts.end());
    out.sequence_counts = std::move(counts);
  } else if (task == Task::kInvertedIndex) {
    for (WordId w = compress::kFirstWordId; w < postings.size(); ++w) {
      if (!postings[w].empty()) {
        out.inverted_index.emplace_back(w, std::move(postings[w]));
      }
    }
  } else if (task == Task::kRankedInvertedIndex) {
    std::vector<uint32_t> order(gram_keys.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return gram_keys[a] < gram_keys[b];
    });
    for (uint32_t idx : order) {
      RankPostings(&gram_postings[idx]);
      out.ranked_index.emplace_back(gram_keys[idx],
                                    std::move(gram_postings[idx]));
    }
  }
  NTADOC_RETURN_IF_ERROR(CheckMediaErrors());

  if (op) {
    writer.Begin();
    StageCursor(&writer, st->cursor_off, 3, 0, 0);
    NTADOC_RETURN_IF_ERROR(
        CommitWithCheckpoint(device_, st, &writer, /*force=*/true));
  } else if (options_.persistence == PersistenceMode::kPhase) {
    PersistTraversalState(device_, st);
  }
  CommitPhase(2);
  return out;
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

Result<AnalyticsOutput> NTadocEngine::Run(Task task,
                                          const AnalyticsOptions& opts,
                                          RunMetrics* metrics) {
  if (opts.ngram < 2 || opts.ngram > NgramKey::kMaxNgram) {
    return Status::InvalidArgument("ngram must be in [2, 4]");
  }
  if (opts.top_k == 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  if (options_.persistence == PersistenceMode::kOperation &&
      !options_.enable_summation) {
    return Status::InvalidArgument(
        "operation-level persistence requires the summation estimator");
  }
  ses_->run_info = NTadocRunInfo();
  // Arm the session deadline as an absolute lane-clock timestamp; every
  // cancellation point compares against it, including repair/salvage
  // attempts (they run on the same clock).
  ses_->deadline_ns =
      options_.deadline_sim_ns == 0
          ? 0
          : device_->clock().NowNanos() + options_.deadline_sim_ns;

  // Repair/salvage loop. Detected corruption (DataLoss) escalates in
  // order of blast radius:
  //   1. scoped repair — re-derive + remap just the damaged blocks and
  //      resume (attach-path damage is repaired inside TryAttach; this
  //      loop handles damage the traversal trips over);
  //   2. salvage restart — discard the persisted state and rebuild from
  //      the still-valid compressed container;
  //   3. degraded mode (opt-in) — complete the query treating unreadable
  //      media as empty, reporting completeness < 1.
  // Injected crashes (Internal) are never salvaged — they model real
  // power loss and must surface to the caller.
  ses_->degraded = false;
  ses_->degraded_events = 0;
  const uint64_t transient0 = device_->transient_retry_count();
  // The tiered pool may not exist yet at Run() entry (it is created inside
  // InitPhase on the first Run); a null pool contributes zero baselines.
  nvm::TierCounters tier0;
  if (ses_->tiered != nullptr) tier0 = ses_->tiered->counters();
  bool force_fresh = false;
  uint32_t salvage_attempts = 0;
  uint32_t scoped_attempts = 0;
  WallTimer timer;

  auto finish_info = [&] {
    ses_->run_info.transient_retries =
        device_->transient_retry_count() - transient0;
    if (ses_->tiered != nullptr) {
      const nvm::TierCounters tc = ses_->tiered->counters();
      ses_->run_info.promotions = tc.promotions - tier0.promotions;
      ses_->run_info.demotions = tc.demotions - tier0.demotions;
      ses_->run_info.migration_epochs =
          tc.migration_epochs - tier0.migration_epochs;
      ses_->run_info.tier_resident_bytes = tc.resident_bytes;
    }
    if (ses_->degraded && ses_->degraded_events > 0) {
      ses_->run_info.degraded_queries = 1;
      const uint64_t steps = ses_->run_info.traversal_steps;
      ses_->run_info.completeness =
          steps == 0 ? 0.0
                     : 1.0 - static_cast<double>(
                                 std::min(ses_->degraded_events, steps)) /
                                 static_cast<double>(steps);
    }
  };

  for (;;) {
    // Fault accounting accumulates across repair/salvage attempts;
    // everything else describes the final (successful) attempt only.
    const uint64_t corruption = ses_->run_info.corruption_detected;
    const uint64_t salvages = ses_->run_info.salvage_restarts;
    const uint64_t lost = ses_->run_info.blocks_lost;
    const uint64_t remapped = ses_->run_info.blocks_remapped;
    const uint64_t repairs = ses_->run_info.scoped_repairs;
    ses_->run_info = NTadocRunInfo();
    ses_->run_info.corruption_detected = corruption;
    ses_->run_info.salvage_restarts = salvages;
    ses_->run_info.blocks_lost = lost;
    ses_->run_info.blocks_remapped = remapped;
    ses_->run_info.scoped_repairs = repairs;
    ses_->state = std::make_unique<State>();
    ses_->media_errors_seen = device_->media_error_count();
    ses_->shared_init_sim_ns = 0;
    ses_->init_shared = false;

    auto salvage = [&](const Status& s) {
      // A batch's shared prefix lives in the pool being discarded; drop
      // it so every remaining task of the batch does a full init, and
      // drop decoded-rule caches built over the doomed layout.
      ses_->batch_shared.reset();
      InvalidateRuleCaches();
      ++ses_->run_info.corruption_detected;
      ++ses_->run_info.salvage_restarts;
      ++salvage_attempts;
      NTADOC_LOG(Warning) << "salvage restart " << salvage_attempts
                          << " after data loss: " << s.message();
      // Invalidate the damaged persistence state so nothing re-attaches
      // to it; the compressed container is the source of truth. Serving
      // sessions serialize this rewrite on the pool-level repair lock.
      if (options_.persistence != PersistenceMode::kNone) {
        util::OptionalMutexLock repair_lk(options_.repair_lock.get());
        nvm::PhaseMarker(device_, kMarkerOffset).Format();
      }
      force_fresh = true;
    };
    // Last resort once repair and salvage budgets are spent: rerun with
    // media errors absorbed instead of surfaced. Only ever entered once.
    auto try_degrade = [&] {
      if (!options_.allow_degraded || ses_->degraded) return false;
      ses_->batch_shared.reset();
      InvalidateRuleCaches();
      NTADOC_LOG(Warning)
          << "repair and salvage exhausted; rerunning degraded";
      ses_->degraded = true;
      force_fresh = true;
      if (options_.persistence != PersistenceMode::kNone) {
        util::OptionalMutexLock repair_lk(options_.repair_lock.get());
        nvm::PhaseMarker(device_, kMarkerOffset).Format();
      }
      return true;
    };

    timer.Reset();
    const uint64_t sim0 = device_->clock().NowNanos();
    const Status init_status =
        InitPhase(task, opts, ses_->state.get(), force_fresh);
    const uint64_t init_wall = timer.ElapsedNanos();
    const uint64_t init_sim = device_->clock().NowNanos() - sim0;
    if (!init_status.ok()) {
      if (init_status.code() == StatusCode::kDataLoss) {
        // Scoped repair first: damage in state a fresh rebuild never
        // rewrites (e.g. a poisoned block under allocator padding, found
        // by the integrity hash) can only be cleared by repair — salvage
        // restarts would hit it again forever.
        if (options_.persistence != PersistenceMode::kNone &&
            scoped_attempts < options_.max_scoped_repairs &&
            TryScopedRepair()) {
          ses_->batch_shared.reset();  // prefix repaired under the batch's feet
          ++scoped_attempts;
          continue;
        }
        if (salvage_attempts < options_.max_salvage_restarts) {
          salvage(init_status);
          continue;
        }
        if (try_degrade()) continue;
      }
      finish_info();
      return init_status;
    }
    // Attach-path probes may have tripped media errors that were handled
    // (counted, repaired, salvaged or healed); only errors from here on
    // are fatal.
    ses_->media_errors_seen = device_->media_error_count();

    timer.Reset();
    const uint64_t trav_sim0 = device_->clock().NowNanos();
    auto result = TraversalPhase(task, opts, ses_->state.get());
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kDataLoss) {
        if (options_.persistence != PersistenceMode::kNone &&
            scoped_attempts < options_.max_scoped_repairs &&
            TryScopedRepair()) {
          // Repaired in place: the next attempt re-attaches to the
          // persisted state and resumes (no force_fresh).
          ses_->batch_shared.reset();
          ++scoped_attempts;
          continue;
        }
        if (salvage_attempts < options_.max_salvage_restarts) {
          salvage(result.status());
          continue;
        }
        if (try_degrade()) continue;
      }
      finish_info();
      return result;
    }
    ses_->run_info.pool_used_bytes = ses_->state->pool ? ses_->state->pool->UsedBytes() : 0;
    if (ses_->state->log) {
      ses_->run_info.redo_logged_bytes = ses_->state->log->logged_payload_bytes();
      ses_->run_info.group_checkpoints = ses_->state->log->checkpoints();
    }
    if (metrics != nullptr) {
      metrics->init_wall_ns = init_wall;
      metrics->init_sim_ns = init_sim;
      metrics->traversal_wall_ns = timer.ElapsedNanos();
      metrics->traversal_sim_ns = device_->clock().NowNanos() - trav_sim0;
      metrics->used_traversal = ses_->state->strategy;
      metrics->shared_init_sim_ns = ses_->shared_init_sim_ns;
      metrics->init_shared = ses_->init_shared;
    }
    finish_info();
    return result;
  }
}

Result<std::vector<AnalyticsOutput>> NTadocEngine::RunBatch(
    std::span<const Task> tasks, const AnalyticsOptions& opts,
    std::vector<RunMetrics>* metrics) {
  std::vector<AnalyticsOutput> outputs;
  outputs.reserve(tasks.size());
  if (metrics != nullptr) metrics->assign(tasks.size(), RunMetrics{});
  if (tasks.empty()) return outputs;

  // Arm the shared-prefix capture: the first full init fills it, every
  // later task's InitPhase consumes it. A salvage or scoped repair along
  // the way drops it (Run resets the pointer), after which the remaining
  // tasks initialize from scratch.
  ses_->batch_shared = std::make_unique<BatchShared>();
  uint64_t reuses = 0;
  Status failure = Status::OK();
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto out = Run(tasks[i], opts, metrics ? &(*metrics)[i] : nullptr);
    reuses += ses_->run_info.batch_init_reuses;
    if (!out.ok()) {
      failure = out.status();
      break;
    }
    outputs.push_back(std::move(*out));
  }
  ses_->batch_shared.reset();
  // run_info() after a batch reports the last task's run, with the reuse
  // counter aggregated over the whole batch.
  ses_->run_info.batch_init_reuses = reuses;
  if (!failure.ok()) return failure;
  return outputs;
}

Result<AnalyticsOutput> NTadocEngine::RunAndCapturePrefix(
    Task task, const AnalyticsOptions& opts,
    std::shared_ptr<const SealedPrefix>* prefix, RunMetrics* metrics) {
  NTADOC_CHECK(prefix != nullptr);
  prefix->reset();
  // Arm the capture exactly like RunBatch's first task: the full init
  // fills the shared state, which then moves into the immutable handle.
  ses_->batch_shared = std::make_unique<BatchShared>();
  auto out = Run(task, opts, metrics);
  std::unique_ptr<BatchShared> captured = std::move(ses_->batch_shared);
  if (!out.ok()) return out;
  if (captured == nullptr || !captured->valid) {
    // Attach reuse, repair or salvage got in the way; the caller should
    // seal over a fresh device (serve::SealPool always does).
    return Status::Internal(
        "sealed-prefix capture requires an undisturbed full init");
  }
  auto sealed = std::shared_ptr<SealedPrefix>(new SealedPrefix());
  sealed->corpus_ = corpus_;
  sealed->pruned_ = options_.enable_pruning;
  sealed->persistence_ = options_.persistence;
  sealed->redo_log_bytes_ = options_.redo_log_bytes;
  sealed->container_generation_ = options_.container_generation;
  sealed->shared_init_sim_ns_ =
      captured->shared_sim_ns +
      (captured->gram_valid ? captured->gram_sim_ns : 0);
  sealed->shared_ = std::move(captured);
  *prefix = std::move(sealed);
  return out;
}

}  // namespace ntadoc::core
