#include "core/pruning.h"

#include <algorithm>
#include <span>

#include "compress/symbols.h"
#include "util/logging.h"

namespace ntadoc::core {

using compress::IsFileSep;
using compress::IsRule;
using compress::IsWord;
using compress::RuleIndex;

namespace {

/// Algorithm 1's bucket step: unique ids with frequencies, sorted by id
/// for deterministic layout.
void BucketCount(std::span<const Symbol> seq,
                 std::vector<PrunedEntry>* subrules,
                 std::vector<PrunedEntry>* words) {
  std::vector<uint32_t> subs;
  std::vector<uint32_t> ws;
  for (Symbol s : seq) {
    if (IsRule(s)) {
      subs.push_back(RuleIndex(s));
    } else if (!IsFileSep(s)) {
      ws.push_back(s);
    }
  }
  auto fold = [](std::vector<uint32_t>* ids, std::vector<PrunedEntry>* out) {
    std::sort(ids->begin(), ids->end());
    for (size_t i = 0; i < ids->size();) {
      size_t j = i;
      while (j < ids->size() && (*ids)[j] == (*ids)[i]) ++j;
      out->push_back({(*ids)[i], static_cast<uint32_t>(j - i)});
      i = j;
    }
  };
  fold(&subs, subrules);
  fold(&ws, words);
}

/// Writes one payload (pruned entries or raw symbols) and fills meta
/// counts. Returns the payload device offset.
Result<uint64_t> WritePrunedPayload(nvm::NvmPool* pool,
                                    const std::vector<PrunedEntry>& subrules,
                                    const std::vector<PrunedEntry>& words) {
  const uint64_t n = subrules.size() + words.size();
  NTADOC_ASSIGN_OR_RETURN(const nvm::PoolOffset off,
                          pool->AllocArray<PrunedEntry>(n));
  if (!subrules.empty()) {
    pool->device().WriteBytes(off, subrules.data(),
                              subrules.size() * sizeof(PrunedEntry));
  }
  if (!words.empty()) {
    pool->device().WriteBytes(off + subrules.size() * sizeof(PrunedEntry),
                              words.data(),
                              words.size() * sizeof(PrunedEntry));
  }
  return static_cast<uint64_t>(off);
}

Result<uint64_t> WriteRawPayload(nvm::NvmPool* pool,
                                 std::span<const Symbol> seq) {
  NTADOC_ASSIGN_OR_RETURN(const nvm::PoolOffset off,
                          pool->AllocArray<Symbol>(seq.size()));
  if (!seq.empty()) {
    pool->device().WriteBytes(off, seq.data(), seq.size() * sizeof(Symbol));
  }
  return static_cast<uint64_t>(off);
}

}  // namespace

Result<PrunedDag> BuildPrunedDag(const Grammar& grammar, nvm::NvmPool* pool,
                                 bool enable_pruning, PruneStats* stats) {
  NTADOC_RETURN_IF_ERROR(grammar.Validate());
  PrunedDag dag;
  dag.pruned = enable_pruning;
  dag.num_rules = grammar.NumRules();
  dag.num_files = grammar.num_files;
  dag.layout_order = grammar.TopologicalOrder();

  NTADOC_ASSIGN_OR_RETURN(dag.rule_meta,
                          NvmVector<RuleMeta>::Create(pool, dag.num_rules));
  dag.rule_meta.Resize(dag.num_rules);
  NTADOC_ASSIGN_OR_RETURN(dag.seg_meta,
                          NvmVector<SegmentMeta>::Create(pool, dag.num_files));
  dag.seg_meta.Resize(dag.num_files);

  const uint64_t payload_begin = pool->top();
  std::vector<uint32_t> in_degree(dag.num_rules, 0);
  std::vector<RuleMeta> metas(dag.num_rules, RuleMeta{});
  uint64_t raw_symbols = 0;
  uint64_t pruned_entries = 0;

  // Root segments (separator-delimited spans of the root body).
  const auto& root = grammar.rules[0];
  std::vector<std::pair<uint32_t, uint32_t>> segments;
  {
    uint32_t begin = 0;
    for (uint32_t i = 0; i < root.size(); ++i) {
      if (IsWord(root[i]) && IsFileSep(root[i])) {
        segments.emplace_back(begin, i);
        begin = i + 1;
      }
    }
  }
  NTADOC_CHECK_EQ(segments.size(), dag.num_files);

  // Rule payloads, adjacent, in topological (traversal) order. The root's
  // content lives in the segment payloads instead.
  for (uint32_t r : dag.layout_order) {
    if (r == 0) continue;
    const auto& body = grammar.rules[r];
    raw_symbols += body.size();
    RuleMeta& m = metas[r];
    m.raw_len = static_cast<uint32_t>(body.size());
    if (enable_pruning) {
      std::vector<PrunedEntry> subrules;
      std::vector<PrunedEntry> words;
      BucketCount(body, &subrules, &words);
      NTADOC_ASSIGN_OR_RETURN(m.payload_off,
                              WritePrunedPayload(pool, subrules, words));
      m.num_subrules = static_cast<uint32_t>(subrules.size());
      m.num_words = static_cast<uint32_t>(words.size());
      pruned_entries += subrules.size() + words.size();
      for (const auto& e : subrules) ++in_degree[e.id];
    } else {
      NTADOC_ASSIGN_OR_RETURN(m.payload_off, WriteRawPayload(pool, body));
      uint32_t subs = 0;
      uint32_t ws = 0;
      for (Symbol s : body) {
        if (IsRule(s)) {
          ++subs;
          ++in_degree[RuleIndex(s)];
        } else {
          ++ws;
        }
      }
      m.num_subrules = subs;
      m.num_words = ws;
      pruned_entries += body.size();
    }
    m.out_degree = m.num_subrules;
    m.weight = 0;
  }

  // Segment payloads (the pruned root).
  for (uint32_t f = 0; f < dag.num_files; ++f) {
    const auto [begin, end] = segments[f];
    const std::span<const Symbol> seg(root.data() + begin, end - begin);
    raw_symbols += seg.size();
    SegmentMeta sm{};
    if (enable_pruning) {
      std::vector<PrunedEntry> subrules;
      std::vector<PrunedEntry> words;
      BucketCount(seg, &subrules, &words);
      NTADOC_ASSIGN_OR_RETURN(sm.payload_off,
                              WritePrunedPayload(pool, subrules, words));
      sm.num_subrules = static_cast<uint32_t>(subrules.size());
      sm.num_words = static_cast<uint32_t>(words.size());
      pruned_entries += subrules.size() + words.size();
      for (const auto& e : subrules) ++in_degree[e.id];
    } else {
      NTADOC_ASSIGN_OR_RETURN(sm.payload_off, WriteRawPayload(pool, seg));
      uint32_t subs = 0;
      uint32_t ws = 0;
      for (Symbol s : seg) {
        if (IsRule(s)) {
          ++subs;
          ++in_degree[RuleIndex(s)];
        } else {
          ++ws;
        }
      }
      sm.num_subrules = subs;
      sm.num_words = ws;
      pruned_entries += seg.size();
    }
    dag.seg_meta.Set(f, sm);
  }

  for (uint32_t r = 0; r < dag.num_rules; ++r) {
    metas[r].in_degree = in_degree[r];
    dag.rule_meta.Set(r, metas[r]);
  }

  dag.payload_bytes = pool->top() - payload_begin;
  dag.payload_begin = payload_begin;
  dag.payload_end = pool->top();
  dag.raw_bytes = raw_symbols * sizeof(Symbol);
  if (stats != nullptr) {
    stats->rules = dag.num_rules;
    stats->raw_symbols = raw_symbols;
    stats->pruned_entries = pruned_entries;
    stats->redundancy_eliminated =
        raw_symbols == 0 ? 0.0
                         : 1.0 - static_cast<double>(pruned_entries) /
                                     static_cast<double>(raw_symbols);
  }
  return dag;
}

namespace {

DecodedPayload DecodePayload(const PrunedDag& dag, nvm::NvmPool* pool,
                             uint64_t payload_off, uint32_t num_subrules,
                             uint32_t num_words) {
  DecodedPayload out;
  // Corrupt (e.g. poison-filled) metadata would request an absurd read;
  // return empty instead — the caller's media-error check reports the
  // damage, and this avoids allocating gigabytes for garbage counts.
  {
    const uint64_t cap = pool->device().capacity();
    const uint64_t entry =
        dag.pruned ? sizeof(PrunedEntry) : sizeof(Symbol);
    const uint64_t n =
        static_cast<uint64_t>(num_subrules) + num_words;
    if (payload_off > cap || n > (cap - payload_off) / entry) return out;
  }
  // Zero-copy decode: borrow the payload from the backing store instead
  // of staging it in a host buffer. On an unreadable block the payload
  // comes back empty with the media error counter bumped — the caller's
  // media-error check reports the loss either way.
  if (dag.pruned) {
    const uint64_t n = static_cast<uint64_t>(num_subrules) + num_words;
    if (n == 0) return out;
    auto span =
        pool->device().TryReadTypedSpan<PrunedEntry>(payload_off, n);
    if (!span.ok()) return out;
    const PrunedEntry* buf = *span;
    out.subrules.reserve(num_subrules);
    for (uint32_t i = 0; i < num_subrules; ++i) {
      out.subrules.emplace_back(buf[i].id, buf[i].freq);
    }
    out.words.reserve(num_words);
    for (uint64_t i = num_subrules; i < n; ++i) {
      out.words.emplace_back(buf[i].id, buf[i].freq);
    }
  } else {
    const uint64_t n = static_cast<uint64_t>(num_subrules) + num_words;
    if (n == 0) return out;
    auto span = pool->device().TryReadTypedSpan<Symbol>(payload_off, n);
    if (!span.ok()) return out;
    const Symbol* buf = *span;
    for (uint64_t i = 0; i < n; ++i) {
      const Symbol s = buf[i];
      if (IsRule(s)) {
        out.subrules.emplace_back(RuleIndex(s), 1);
      } else if (!IsFileSep(s)) {
        out.words.emplace_back(s, 1);
      }
    }
  }
  return out;
}

}  // namespace

namespace {

void FillExtent(const PrunedDag& dag, uint64_t meta_off, uint64_t meta_len,
                uint64_t payload_off, uint64_t n, PayloadExtent* extent) {
  if (extent == nullptr) return;
  extent->meta_off = meta_off;
  extent->meta_len = meta_len;
  extent->payload_off = payload_off;
  extent->payload_len =
      n * (dag.pruned ? sizeof(PrunedEntry) : sizeof(Symbol));
}

}  // namespace

DecodedPayload ReadRulePayload(const PrunedDag& dag, nvm::NvmPool* pool,
                               uint32_t r, PayloadExtent* extent) {
  const RuleMeta m = dag.rule_meta.Get(r);
  FillExtent(dag, dag.rule_meta.ElementOffset(r), sizeof(RuleMeta),
             m.payload_off,
             static_cast<uint64_t>(m.num_subrules) + m.num_words, extent);
  return DecodePayload(dag, pool, m.payload_off, m.num_subrules,
                       m.num_words);
}

DecodedPayload ReadSegmentPayload(const PrunedDag& dag, nvm::NvmPool* pool,
                                  uint32_t f, PayloadExtent* extent) {
  const SegmentMeta m = dag.seg_meta.Get(f);
  FillExtent(dag, dag.seg_meta.ElementOffset(f), sizeof(SegmentMeta),
             m.payload_off,
             static_cast<uint64_t>(m.num_subrules) + m.num_words, extent);
  return DecodePayload(dag, pool, m.payload_off, m.num_subrules,
                       m.num_words);
}

namespace {

/// Rewrites one payload's bytes at its original offset after validating
/// the (possibly damaged) metadata against the re-derivation. The encoded
/// bytes are identical to what BuildPrunedDag wrote, so healed blocks
/// still match the init-region integrity hash.
Status RewritePayload(const PrunedDag& dag, nvm::NvmPool* pool,
                      uint64_t payload_off, uint32_t num_subrules,
                      uint32_t num_words, std::span<const Symbol> body,
                      uint32_t raw_len, bool check_raw_len) {
  auto bad = [](const char* what) {
    return Status::DataLoss(std::string("rederive: metadata mismatch: ") +
                            what);
  };
  if (dag.pruned) {
    std::vector<PrunedEntry> subrules;
    std::vector<PrunedEntry> words;
    BucketCount(body, &subrules, &words);
    if (num_subrules != subrules.size() || num_words != words.size()) {
      return bad("entry counts");
    }
    const uint64_t bytes =
        (subrules.size() + words.size()) * sizeof(PrunedEntry);
    if (payload_off < dag.payload_begin ||
        payload_off + bytes > dag.payload_end) {
      return bad("payload bounds");
    }
    if (!subrules.empty()) {
      pool->device().WriteBytes(payload_off, subrules.data(),
                                subrules.size() * sizeof(PrunedEntry));
    }
    if (!words.empty()) {
      pool->device().WriteBytes(
          payload_off + subrules.size() * sizeof(PrunedEntry), words.data(),
          words.size() * sizeof(PrunedEntry));
    }
    pool->device().FlushRange(payload_off, bytes);
  } else {
    if (check_raw_len && raw_len != body.size()) return bad("raw length");
    uint32_t subs = 0;
    uint32_t ws = 0;
    for (Symbol s : body) {
      if (IsRule(s)) {
        ++subs;
      } else {
        ++ws;
      }
    }
    if (num_subrules != subs || num_words != ws) return bad("entry counts");
    const uint64_t bytes = body.size() * sizeof(Symbol);
    if (payload_off < dag.payload_begin ||
        payload_off + bytes > dag.payload_end) {
      return bad("payload bounds");
    }
    if (!body.empty()) {
      pool->device().WriteBytes(payload_off, body.data(), bytes);
      pool->device().FlushRange(payload_off, bytes);
    }
  }
  return Status::OK();
}

}  // namespace

Status RederiveRulePayload(const Grammar& grammar, const PrunedDag& dag,
                           nvm::NvmPool* pool, uint32_t r) {
  if (r == 0 || r >= dag.num_rules || r >= grammar.NumRules()) {
    return Status::InvalidArgument("rederive: rule index out of range");
  }
  const RuleMeta m = dag.rule_meta.Get(r);
  const auto& body = grammar.rules[r];
  return RewritePayload(dag, pool, m.payload_off, m.num_subrules,
                        m.num_words, body, m.raw_len,
                        /*check_raw_len=*/true);
}

Status RederiveSegmentPayload(const Grammar& grammar, const PrunedDag& dag,
                              nvm::NvmPool* pool, uint32_t f) {
  if (f >= dag.num_files || grammar.rules.empty()) {
    return Status::InvalidArgument("rederive: segment index out of range");
  }
  // Recompute the separator-delimited segment spans of the root body,
  // exactly as BuildPrunedDag laid them out.
  const auto& root = grammar.rules[0];
  std::vector<std::pair<uint32_t, uint32_t>> segments;
  uint32_t begin = 0;
  for (uint32_t i = 0; i < root.size(); ++i) {
    if (IsWord(root[i]) && IsFileSep(root[i])) {
      segments.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  if (f >= segments.size()) {
    return Status::DataLoss("rederive: segment spans inconsistent");
  }
  const auto [sb, se] = segments[f];
  const std::span<const Symbol> seg(root.data() + sb, se - sb);
  const SegmentMeta m = dag.seg_meta.Get(f);
  return RewritePayload(dag, pool, m.payload_off, m.num_subrules,
                        m.num_words, seg, 0, /*check_raw_len=*/false);
}

}  // namespace ntadoc::core
