// Durable compressed-container storage with crash-atomic streaming
// appends (the persistence half of chunk-parallel ingest).
//
// A ContainerStore owns a device region laid out as
//
//   [ static header | slot descriptor | redo log | slot 0 | slot 1 ]
//
// and keeps the serialized container (compress::SerializeCorpus bytes)
// in one of two slots. AppendFiles merges new documents into the
// in-memory grammar (see compress/parallel_compress.h); the store makes
// that durable with a classic shadow-slot protocol under the epoch
// group-commit machinery from the operation-level persistence work:
//
//   1. The merged container is serialized into the INACTIVE slot,
//      flushed, and drained — new data is durable while the descriptor
//      still points at the old slot.
//   2. The slot descriptor (active slot, sequence number, length) flips
//      in ONE redo-log epoch: the new value is written through to its
//      home line and committed with RedoLog::CommitApplied, so the
//      sealed commit record — not a home flush — is the durability
//      point. Each append is exactly one epoch (`append_epochs`).
//   3. If the log is full, the store checkpoints (FlushAppliedHome +
//      Truncate) and retries, exactly like the engine's group-commit
//      path.
//
// A crash before the commit record leaves the old descriptor: recovery
// opens the old container, and the half-written inactive slot is
// unreferenced garbage. A crash after it replays the flip and opens the
// appended container. There is no window where a reader can observe a
// mix, which is what the drain-point sweep in tests/crash_sweep_test.cc
// verifies at every fence of the workload.

#ifndef NTADOC_CORE_CONTAINER_STORE_H_
#define NTADOC_CORE_CONTAINER_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "compress/format.h"
#include "compress/parallel_compress.h"
#include "nvm/nvm_device.h"
#include "nvm/obj_log.h"
#include "util/status.h"

namespace ntadoc::core {

struct ContainerStoreOptions {
  /// Redo-log region bytes. The descriptor flip is tiny, so this mostly
  /// bounds how many appends fit between group checkpoints.
  uint64_t log_bytes = 4096;
};

/// A staged-but-uncommitted append: the merged container is durable in
/// the inactive slot, but the descriptor still names the old one. The
/// refresh path seals a new serving generation from `merged` between
/// StageAppend and CommitAppend, so the descriptor flip — the true
/// cutover — happens only once the replacement generation exists.
struct PendingAppend {
  compress::CompressedCorpus merged;
  uint64_t length = 0;    ///< serialized container bytes in the slot
  uint32_t target_slot = 0;
  uint64_t sequence = 0;  ///< sequence CommitAppend will install
};

/// Durable dual-slot container home. Not thread-safe; the serving
/// engine opens containers read-only, and at most one writer may stage
/// and commit appends at a time (the generational refresher serializes
/// refreshes itself).
class ContainerStore {
 public:
  /// Formats [base, base+size) of `device` and stores `corpus` as the
  /// initial container (slot 0, sequence 1). `device` must outlive the
  /// store.
  static Result<ContainerStore> Create(nvm::NvmDevice* device, uint64_t base,
                                       uint64_t size,
                                       const compress::CompressedCorpus& corpus,
                                       const ContainerStoreOptions& opts = {});

  /// Opens a formatted region after a restart: recovers the redo log
  /// (replaying any committed-but-unapplied descriptor flip), then
  /// validates the descriptor.
  static Result<ContainerStore> Open(nvm::NvmDevice* device, uint64_t base);

  ContainerStore(ContainerStore&&) = default;
  ContainerStore& operator=(ContainerStore&&) = default;

  /// Reads and parses the active slot. Deserialization re-validates the
  /// container checksum, so torn or corrupt slot data fails loudly.
  Result<compress::CompressedCorpus> Load();

  /// Durably appends `new_files` to the stored container (see file
  /// comment for the crash protocol). On success the active container
  /// decodes identically to a full recompress of old+new files. `stats`
  /// (optional) receives the merge counters with `append_epochs` set to
  /// this store's lifetime epoch count.
  Status AppendFiles(const std::vector<compress::InputFile>& new_files,
                const compress::ParallelCompressOptions& popts,
                compress::ParallelCompressStats* stats = nullptr);

  /// First half of AppendFiles: loads the active container, merges
  /// `new_files`, and shadow-writes the result durably into the inactive
  /// slot — without flipping the descriptor. The store is unchanged until
  /// CommitAppend; a crash here loses only the staged bytes. Transient
  /// media faults surface as DataLoss, which is retryable (the next
  /// StageAppend re-reads and re-stages from scratch).
  Result<PendingAppend> StageAppend(
      const std::vector<compress::InputFile>& new_files,
      const compress::ParallelCompressOptions& popts,
      compress::ParallelCompressStats* stats = nullptr);

  /// Second half of AppendFiles: flips the descriptor to the staged slot
  /// as one redo-log epoch. `pending` must come from this store's most
  /// recent StageAppend (enforced via the sequence guard); on failure the
  /// old descriptor stays live and the call may be retried.
  Status CommitAppend(const PendingAppend& pending);

  /// Slot currently holding the container (0 or 1).
  uint32_t active_slot() const { return desc_.active_slot; }

  /// Descriptor sequence number (1 after Create, +1 per append).
  uint64_t sequence() const { return desc_.sequence; }

  /// The container generation: a name for the descriptor sequence that
  /// the serving layer uses to key sealed-prefix reuse and to identify
  /// serving generations. Changes exactly when a commit lands.
  uint64_t generation() const { return desc_.sequence; }

  /// The device holding this store's region (for clock access on retry
  /// backoff paths). Never null.
  nvm::NvmDevice* device() const { return device_; }

  /// Registers a hook invoked after every successful descriptor commit
  /// with the new generation number. The CLI uses this to notify serving
  /// processes that a refresh cutover landed.
  void set_refresh_hook(std::function<void(uint64_t)> hook) {
    refresh_hook_ = std::move(hook);
  }

  /// Serialized bytes of the active container.
  uint64_t container_bytes() const { return desc_.length; }

  /// Epoch commits performed by this store instance.
  uint64_t append_epochs() const { return append_epochs_; }

  /// Capacity of each slot under the current geometry.
  uint64_t slot_capacity() const { return header_.slot_capacity; }

 private:
  /// Static geometry, written once at Create time (one 64 B line).
  struct Header {
    uint64_t magic = 0;
    uint64_t region_size = 0;
    uint64_t log_offset = 0;
    uint64_t log_bytes = 0;
    uint64_t slot_offset[2] = {0, 0};
    uint64_t slot_capacity = 0;
  };

  /// Mutable state, one 64 B line, flipped via one epoch per append.
  struct SlotDesc {
    uint32_t active_slot = 0;
    uint32_t padding = 0;
    uint64_t sequence = 0;
    uint64_t length = 0;
  };

  ContainerStore(nvm::NvmDevice* device, uint64_t base);

  /// Commits `desc` as one redo-log epoch (write-through then
  /// CommitApplied), checkpointing and retrying once on a full log.
  Status CommitDescriptor(const SlotDesc& desc);

  uint64_t header_offset() const { return base_; }
  uint64_t desc_offset() const { return base_ + 64; }

  nvm::NvmDevice* device_;
  uint64_t base_;
  Header header_;
  SlotDesc desc_;
  std::optional<nvm::RedoLog> log_;
  uint64_t append_epochs_ = 0;
  std::function<void(uint64_t)> refresh_hook_;
};

}  // namespace ntadoc::core

#endif  // NTADOC_CORE_CONTAINER_STORE_H_
