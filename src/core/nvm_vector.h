// Fixed-capacity typed array in the NVM pool (Section IV-D).
//
// N-TADOC sizes every variable-length structure up front using the
// bottom-up summation (Algorithm 2) and then allocates it exactly once in
// the pool — NvmVector is that allocation: a bounds-checked typed window
// onto pool storage, with every element access charged through the
// device. When summation is disabled (ablation), the engine instead grows
// vectors by allocate-copy-rebuild, which is precisely the redundant NVM
// traffic the paper's design avoids.

#ifndef NTADOC_CORE_NVM_VECTOR_H_
#define NTADOC_CORE_NVM_VECTOR_H_

#include <cstdint>

#include "nvm/nvm_pool.h"
#include "util/logging.h"
#include "util/status.h"

namespace ntadoc::core {

/// Typed fixed-capacity array in an NVM pool. T must be trivially
/// copyable. The vector object itself is a volatile handle; the data is
/// pool-resident and addressable by (pool, offset, capacity).
template <typename T>
class NvmVector {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  NvmVector() = default;

  /// Allocates capacity*sizeof(T) bytes in `pool`.
  static Result<NvmVector<T>> Create(nvm::NvmPool* pool, uint64_t capacity) {
    NTADOC_ASSIGN_OR_RETURN(const nvm::PoolOffset off,
                            pool->template AllocArray<T>(capacity));
    return NvmVector<T>(pool, off, capacity);
  }

  /// Re-attaches to an existing allocation (after recovery).
  static NvmVector<T> Attach(nvm::NvmPool* pool, nvm::PoolOffset offset,
                             uint64_t capacity, uint64_t size) {
    NvmVector<T> v(pool, offset, capacity);
    v.size_ = size;
    return v;
  }

  bool valid() const { return pool_ != nullptr; }
  uint64_t capacity() const { return capacity_; }
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  nvm::PoolOffset offset() const { return offset_; }

  /// Device offset of element `i`.
  uint64_t ElementOffset(uint64_t i) const { return offset_ + i * sizeof(T); }

  /// Charged element load.
  T Get(uint64_t i) const {
    NTADOC_DCHECK_LT(i, size_);
    return pool_->device().template Read<T>(ElementOffset(i));
  }

  /// Charged element store (i < size()).
  void Set(uint64_t i, const T& v) {
    NTADOC_DCHECK_LT(i, size_);
    pool_->device().Write(ElementOffset(i), v);
  }

  /// Appends; ResourceExhausted when full (callers with summation enabled
  /// never hit this).
  Status PushBack(const T& v) {
    if (size_ == capacity_) {
      return Status::ResourceExhausted("NvmVector capacity exceeded");
    }
    pool_->device().Write(ElementOffset(size_), v);
    ++size_;
    return Status::OK();
  }

  /// Bulk charged read of [begin, begin+count) into `dst`.
  void ReadRange(uint64_t begin, uint64_t count, T* dst) const {
    NTADOC_DCHECK_LE(begin + count, size_);
    pool_->device().ReadBytes(ElementOffset(begin), dst, count * sizeof(T));
  }

  /// Zero-copy borrow of [begin, begin+count), charged exactly like a
  /// per-element Get() loop over the range (quantum = sizeof(T)). The
  /// borrow's contents are valid until the next device write or crash.
  /// DataLoss on unreadable media (charged, media error counter bumped).
  Result<const T*> ReadSpan(uint64_t begin, uint64_t count) const {
    NTADOC_DCHECK_LE(begin + count, size_);
    return pool_->device().template TryReadTypedSpan<T>(
        ElementOffset(begin), count, /*quantum=*/sizeof(T));
  }

  /// Bulk charged write; extends size to at least begin+count.
  void WriteRange(uint64_t begin, uint64_t count, const T* src) {
    NTADOC_DCHECK_LE(begin + count, capacity_);
    pool_->device().WriteBytes(ElementOffset(begin), src, count * sizeof(T));
    if (begin + count > size_) size_ = begin + count;
  }

  /// Sets logical size (elements in [0, n) must have been written).
  void Resize(uint64_t n) {
    NTADOC_DCHECK_LE(n, capacity_);
    size_ = n;
  }

  /// Zero-fills the whole capacity (one bulk charged fill; quantum keeps
  /// the charging identical to the 512-element chunked loop this
  /// replaces) and sets size to `logical_size`.
  void ZeroFill(uint64_t logical_size) {
    pool_->device().FillBytes(offset_, capacity_ * sizeof(T), 0,
                              /*quantum=*/512 * sizeof(T));
    size_ = logical_size;
  }

  /// Flushes the contents for persistence.
  void Persist() {
    pool_->device().FlushRange(offset_, size_ * sizeof(T));
    pool_->device().Drain();
    pool_->device().AssertPersisted(offset_, size_ * sizeof(T));
  }

 private:
  NvmVector(nvm::NvmPool* pool, nvm::PoolOffset offset, uint64_t capacity)
      : pool_(pool), offset_(offset), capacity_(capacity) {}

  nvm::NvmPool* pool_ = nullptr;
  nvm::PoolOffset offset_ = 0;
  uint64_t capacity_ = 0;
  uint64_t size_ = 0;
};

}  // namespace ntadoc::core

#endif  // NTADOC_CORE_NVM_VECTOR_H_
