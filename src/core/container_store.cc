#include "core/container_store.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ntadoc::core {

namespace {

constexpr uint64_t kStoreMagic = 0x4E54414443535452ull;  // "NTADCSTR"
constexpr uint64_t kLine = 64;

}  // namespace

ContainerStore::ContainerStore(nvm::NvmDevice* device, uint64_t base)
    : device_(device), base_(base) {}

Result<ContainerStore> ContainerStore::Create(
    nvm::NvmDevice* device, uint64_t base, uint64_t size,
    const compress::CompressedCorpus& corpus,
    const ContainerStoreOptions& opts) {
  if (base % kLine != 0 || size % kLine != 0) {
    return Status::InvalidArgument(
        "ContainerStore::Create: region must be 64 B aligned");
  }
  if (opts.log_bytes % kLine != 0 || opts.log_bytes < 512) {
    return Status::InvalidArgument(
        "ContainerStore::Create: log_bytes must be >= 512 and 64 B aligned");
  }
  const uint64_t meta_bytes = 2 * kLine;  // header line + descriptor line
  if (size < meta_bytes + opts.log_bytes + 2 * kLine) {
    return Status::InvalidArgument(
        "ContainerStore::Create: region too small for layout");
  }
  if (base + size > device->capacity()) {
    return Status::OutOfRange(
        "ContainerStore::Create: region exceeds device capacity");
  }

  ContainerStore store(device, base);
  Header& h = store.header_;
  h.magic = kStoreMagic;
  h.region_size = size;
  h.log_offset = base + meta_bytes;
  h.log_bytes = opts.log_bytes;
  const uint64_t data_offset = h.log_offset + h.log_bytes;
  h.slot_capacity = ((size - meta_bytes - h.log_bytes) / 2) & ~(kLine - 1);
  h.slot_offset[0] = data_offset;
  h.slot_offset[1] = data_offset + h.slot_capacity;

  const std::string bytes = compress::SerializeCorpus(corpus);
  if (bytes.size() > h.slot_capacity) {
    return Status::ResourceExhausted(
        "ContainerStore::Create: container does not fit a slot");
  }

  // Initial container into slot 0, durable before any metadata names it.
  device->WriteBytes(h.slot_offset[0], bytes.data(), bytes.size());
  device->FlushRange(h.slot_offset[0], bytes.size());
  device->Drain();

  SlotDesc& d = store.desc_;
  d.active_slot = 0;
  d.sequence = 1;
  d.length = bytes.size();
  device->Write(store.header_offset(), h);
  device->Write(store.desc_offset(), d);
  device->FlushRange(store.header_offset(), 2 * kLine);
  device->Drain();

  NTADOC_ASSIGN_OR_RETURN(
      nvm::RedoLog log, nvm::RedoLog::Create(device, h.log_offset, h.log_bytes));
  store.log_.emplace(std::move(log));
  return store;
}

Result<ContainerStore> ContainerStore::Open(nvm::NvmDevice* device,
                                            uint64_t base) {
  ContainerStore store(device, base);
  NTADOC_RETURN_IF_ERROR(device->TryReadBytes(base, &store.header_,
                                              sizeof(store.header_)));
  const Header& h = store.header_;
  if (h.magic != kStoreMagic) {
    return Status::DataLoss("ContainerStore::Open: bad magic");
  }
  if (h.log_offset != base + 2 * kLine || h.slot_capacity == 0 ||
      h.slot_offset[1] + h.slot_capacity > base + h.region_size) {
    return Status::DataLoss("ContainerStore::Open: corrupt geometry header");
  }

  // Recover the descriptor flip, if one was committed but its home line
  // never made it to media: Recover() replays the committed prefix
  // (including any sealed epoch suffix), flushes homes, and truncates.
  NTADOC_ASSIGN_OR_RETURN(nvm::RedoLog log,
                          nvm::RedoLog::Open(device, h.log_offset));
  NTADOC_RETURN_IF_ERROR(log.Recover().status());
  store.log_.emplace(std::move(log));

  NTADOC_RETURN_IF_ERROR(
      device->TryReadBytes(store.desc_offset(), &store.desc_,
                           sizeof(store.desc_)));
  const SlotDesc& d = store.desc_;
  if (d.active_slot > 1 || d.sequence == 0 || d.length > h.slot_capacity) {
    return Status::DataLoss("ContainerStore::Open: corrupt slot descriptor");
  }
  return store;
}

Result<compress::CompressedCorpus> ContainerStore::Load() {
  std::string bytes(desc_.length, '\0');
  NTADOC_RETURN_IF_ERROR(device_->TryReadBytes(
      header_.slot_offset[desc_.active_slot], bytes.data(), bytes.size()));
  return compress::DeserializeCorpus(bytes);
}

Status ContainerStore::CommitDescriptor(const SlotDesc& desc) {
  // Write-through then epoch-commit: the home line carries the new value
  // before the commit record seals it, so recovery either replays this
  // exact value or never sees the epoch at all.
  device_->Write(desc_offset(), desc);
  log_->Begin();
  log_->StageValue(desc_offset(), desc);
  const std::vector<uint64_t> home_lines = {desc_offset() / kLine};
  Status s = log_->CommitApplied(home_lines);
  if (s.code() == StatusCode::kResourceExhausted) {
    // Group checkpoint: make previously applied homes durable, reclaim
    // the log, and retry — staged writes survive a failed commit.
    log_->FlushAppliedHome();
    log_->Truncate();
    s = log_->CommitApplied(home_lines);
  }
  if (!s.ok()) log_->Abort();
  return s;
}

Result<PendingAppend> ContainerStore::StageAppend(
    const std::vector<compress::InputFile>& new_files,
    const compress::ParallelCompressOptions& popts,
    compress::ParallelCompressStats* stats) {
  NTADOC_ASSIGN_OR_RETURN(compress::CompressedCorpus base, Load());
  NTADOC_ASSIGN_OR_RETURN(
      compress::CompressedCorpus merged,
      compress::AppendFiles(base, new_files, popts, stats));

  const std::string bytes = compress::SerializeCorpus(merged);
  if (bytes.size() > header_.slot_capacity) {
    return Status::ResourceExhausted(
        "ContainerStore::StageAppend: merged container does not fit a slot");
  }

  // Shadow write: the new container lands in the inactive slot and is
  // drained durable while the descriptor still names the old slot. A
  // crash anywhere up to the commit record loses only the append.
  const uint32_t target = 1 - desc_.active_slot;
  device_->WriteBytes(header_.slot_offset[target], bytes.data(), bytes.size());
  device_->FlushRange(header_.slot_offset[target], bytes.size());
  device_->Drain();

  PendingAppend pending;
  pending.merged = std::move(merged);
  pending.length = bytes.size();
  pending.target_slot = target;
  pending.sequence = desc_.sequence + 1;
  return pending;
}

Status ContainerStore::CommitAppend(const PendingAppend& pending) {
  if (pending.sequence != desc_.sequence + 1 ||
      pending.target_slot != 1 - desc_.active_slot) {
    return Status::InvalidArgument(
        "ContainerStore::CommitAppend: pending append is stale (staged "
        "against a different descriptor)");
  }
  SlotDesc next = desc_;
  next.active_slot = pending.target_slot;
  next.sequence = pending.sequence;
  next.length = pending.length;
  NTADOC_RETURN_IF_ERROR(CommitDescriptor(next));
  desc_ = next;
  ++append_epochs_;
  if (refresh_hook_) refresh_hook_(desc_.sequence);
  return Status::OK();
}

Status ContainerStore::AppendFiles(
    const std::vector<compress::InputFile>& new_files,
    const compress::ParallelCompressOptions& popts,
    compress::ParallelCompressStats* stats) {
  NTADOC_ASSIGN_OR_RETURN(PendingAppend pending,
                          StageAppend(new_files, popts, stats));
  NTADOC_RETURN_IF_ERROR(CommitAppend(pending));
  if (stats != nullptr) stats->append_epochs = append_epochs_;
  return Status::OK();
}

}  // namespace ntadoc::core
