// Bottom-up summation (Section IV-C, Algorithm 2).
//
// Estimates, for every rule, an upper bound on the size of its
// variable-length analytics structure (distinct-word list, or local
// n-gram list for sequence tasks): once a rule's subrules are all
// "determined", its bound is the sum of their bounds plus its own item
// count. The engine allocates each pool structure at its bound exactly
// once, eliminating the read-modify-write reconstruction traffic that
// dynamic growth on NVM would cause.

#ifndef NTADOC_CORE_SUMMATION_H_
#define NTADOC_CORE_SUMMATION_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ntadoc::core {

/// Adjacency of the pruned DAG: children[r] lists rule r's unique
/// (subrule, frequency) pairs.
using DagChildren = std::vector<std::vector<std::pair<uint32_t, uint32_t>>>;

/// Runs Algorithm 2 over every rule: returns ub[r] = own_count[r] +
/// sum over unique subrules s of ub[s]. `children` and `own_count` must
/// have equal size; the DAG must be acyclic (guaranteed by the grammar).
///
/// Implemented as an explicit-stack depth-first pass that mirrors the
/// paper's recursion (including the "determined" memoization) without
/// risking stack overflow on deep grammars.
std::vector<uint64_t> BottomUpSummation(const DagChildren& children,
                                        const std::vector<uint64_t>& own_count);

/// Upper bound for a single composite span (e.g. a root file segment):
/// own_count plus the bounds of its unique children.
uint64_t SpanUpperBound(
    const std::vector<std::pair<uint32_t, uint32_t>>& child_entries,
    uint64_t own_count, const std::vector<uint64_t>& rule_bounds);

}  // namespace ntadoc::core

#endif  // NTADOC_CORE_SUMMATION_H_
