// Pruning with NVM pool management (Section IV-B, Algorithm 1).
//
// Each rule's grammar is trimmed to unique (subrule, frequency) pairs
// followed by unique (word, frequency) pairs, and the pruned payloads of
// all rules are written adjacently into the DAG pool in topological
// order — the traversal then reads the pool near-sequentially, which is
// what restores data locality on the 256 B-granular device. The root rule
// is pruned per file segment so per-file attribution survives.
//
// With pruning disabled (ablation), payloads are the raw symbol
// sequences: duplicated subrules, no frequency aggregation, more NVM
// bytes and more scattered traversal work.

#ifndef NTADOC_CORE_PRUNING_H_
#define NTADOC_CORE_PRUNING_H_

#include <cstdint>
#include <vector>

#include "compress/grammar.h"
#include "core/nvm_vector.h"
#include "nvm/nvm_pool.h"
#include "util/status.h"

namespace ntadoc::core {

using compress::Grammar;
using compress::Symbol;

/// One pruned payload element: a subrule or word id with its in-rule
/// frequency.
struct PrunedEntry {
  uint32_t id;
  uint32_t freq;
};

/// Pool-resident metadata of one rule (the paper's rule metadata:
/// position, degrees, word list size, weight slot).
struct RuleMeta {
  /// Device offset of the pruned payload.
  uint64_t payload_off;

  /// Payload shape: subrule entries come first, then word entries. In
  /// pruned mode these are unique-id counts; in raw mode, occurrence
  /// counts (and the payload is a raw Symbol sequence).
  uint32_t num_subrules;
  uint32_t num_words;

  /// Incoming edges for Kahn traversal (unique parents when pruned,
  /// total references when raw).
  uint32_t in_degree;

  /// Outgoing edges (matches num_subrules interpretation).
  uint32_t out_degree;

  /// Original grammar length of the rule (L_raw, for stats).
  uint32_t raw_len;

  uint32_t reserved;

  /// Rule weight, written during top-down traversal.
  uint64_t weight;
};

/// Pool-resident metadata of one root-rule file segment.
struct SegmentMeta {
  uint64_t payload_off;
  uint32_t num_subrules;
  uint32_t num_words;
};

/// Handle to the pool-resident pruned DAG.
struct PrunedDag {
  NvmVector<RuleMeta> rule_meta;   // [num_rules]
  NvmVector<SegmentMeta> seg_meta;  // [num_files]
  bool pruned = true;
  uint32_t num_rules = 0;
  uint32_t num_files = 0;

  /// Topological order used for payload layout (parents first); rules
  /// are processed in this order so pool reads are near-sequential.
  std::vector<uint32_t> layout_order;

  /// Total payload bytes written (compressed-on-NVM size measure).
  uint64_t payload_bytes = 0;

  /// Device extent holding every rule and segment payload (recorded in
  /// the catalog; scoped salvage classifies damaged blocks against it).
  uint64_t payload_begin = 0;
  uint64_t payload_end = 0;

  /// Grammar bytes before pruning (for the redundancy-elimination stat).
  uint64_t raw_bytes = 0;
};

/// Statistics of one pruning run.
struct PruneStats {
  uint64_t rules = 0;
  uint64_t raw_symbols = 0;
  uint64_t pruned_entries = 0;
  double redundancy_eliminated = 0.0;  // 1 - pruned/raw
};

/// Builds the pruned DAG in `pool` (Algorithm 1 applied to every rule and
/// to each root segment). When `enable_pruning` is false the payloads are
/// raw symbol sequences instead.
Result<PrunedDag> BuildPrunedDag(const Grammar& grammar,
                                 nvm::NvmPool* pool, bool enable_pruning,
                                 PruneStats* stats = nullptr);

/// Host-side decoded payload of one rule/segment, read back from the
/// pool with one sequential charged read.
struct DecodedPayload {
  /// (subrule id, frequency) pairs; unique when pruned.
  std::vector<std::pair<uint32_t, uint32_t>> subrules;
  /// (word id, frequency) pairs; unique when pruned.
  std::vector<std::pair<uint32_t, uint32_t>> words;
};

/// Device extents one payload read touches (metadata slot + encoded
/// payload). The engine's decoded-rule cache replays these against a DRAM
/// cost model on a cache hit instead of re-reading the device.
struct PayloadExtent {
  uint64_t meta_off = 0;
  uint64_t meta_len = 0;
  uint64_t payload_off = 0;
  uint64_t payload_len = 0;
};

/// Reads rule `r`'s payload. `extent`, when non-null, receives the
/// charged device extents.
DecodedPayload ReadRulePayload(const PrunedDag& dag, nvm::NvmPool* pool,
                               uint32_t r, PayloadExtent* extent = nullptr);

/// Reads file segment `f`'s payload. `extent` as in ReadRulePayload.
DecodedPayload ReadSegmentPayload(const PrunedDag& dag, nvm::NvmPool* pool,
                                  uint32_t f,
                                  PayloadExtent* extent = nullptr);

/// Scoped salvage: re-derives rule `r`'s payload from the compressed
/// container and rewrites it byte-exactly at its original pool offset
/// (payload layout is deterministic, so the init-region integrity hash
/// still verifies afterward). The rule's metadata must be readable and
/// consistent with the re-derivation; returns DataLoss when it is not.
Status RederiveRulePayload(const Grammar& grammar, const PrunedDag& dag,
                           nvm::NvmPool* pool, uint32_t r);

/// Scoped salvage for file segment `f`'s payload; see RederiveRulePayload.
Status RederiveSegmentPayload(const Grammar& grammar, const PrunedDag& dag,
                              nvm::NvmPool* pool, uint32_t f);

}  // namespace ntadoc::core

#endif  // NTADOC_CORE_PRUNING_H_
