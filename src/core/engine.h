// N-TADOC: NVM-based text analytics directly on compressed data.
//
// The paper's system (Section IV). A run has two phases:
//   1. Initialization — the compressed grammar is pruned (Algorithm 1)
//      into a contiguous DAG pool on the NVM device, per-structure upper
//      bounds are estimated bottom-up (Algorithm 2), and every
//      variable-length analytics structure (hash tables, word lists,
//      local n-gram lists) is allocated exactly once at its bound.
//   2. Graph traversal — top-down weight propagation over the pruned DAG
//      (Kahn queue resident in the pool) or bottom-up list merging in
//      reverse layout order; counters live in pool-resident hash tables.
//
// Persistence (Section IV-E):
//   * kNone       — volatile run, no flushes (used for ablations);
//   * kPhase      — libpmem-style: bulk flush + durable phase marker at
//                   each phase boundary; recovery restarts the
//                   interrupted phase, reusing completed ones;
//   * kOperation  — libpmemobj-style: every traversal step's mutations
//                   commit through a redo-log transaction with a durable
//                   cursor, so recovery resumes mid-phase at the last
//                   completed step (at the cost of write amplification).

#ifndef NTADOC_CORE_ENGINE_H_
#define NTADOC_CORE_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "compress/compressor.h"
#include "core/nvm_hash_table.h"
#include "core/nvm_vector.h"
#include "core/pruning.h"
#include "nvm/nvm_device.h"
#include "nvm/nvm_pool.h"
#include "nvm/obj_log.h"
#include "nvm/tiered_pool.h"
#include "nvm/pmem.h"
#include "tadoc/analytics.h"
#include "tadoc/engine.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ntadoc::core {

using compress::CompressedCorpus;
using tadoc::AnalyticsOptions;
using tadoc::AnalyticsOutput;
using tadoc::NgramKey;
using tadoc::RunMetrics;
using tadoc::Task;
using tadoc::TraversalStrategy;

/// Persistence cost levels (Section IV-E).
enum class PersistenceMode : uint8_t { kNone = 0, kPhase, kOperation };

const char* PersistenceModeToString(PersistenceMode m);

class SealedPrefix;      // immutable cross-session init prefix (below)
class SharedRuleCache;   // thread-safe decoded-rule cache (below)

/// N-TADOC configuration.
struct NTadocOptions {
  PersistenceMode persistence = PersistenceMode::kPhase;

  TraversalStrategy traversal = TraversalStrategy::kAuto;

  /// Ablation: disable Algorithm 1 (payloads stay raw and unaggregated).
  bool enable_pruning = true;

  /// Ablation: disable Algorithm 2 (structures start small and are
  /// rebuilt/doubled on overflow — the redundant NVM traffic the paper
  /// measures against).
  bool enable_summation = true;

  /// kAuto switches per-file tasks to bottom-up above this file count.
  uint32_t many_files_threshold = 32;

  /// Redo-log region size for operation-level persistence.
  uint64_t redo_log_bytes = 8ull << 20;

  /// Operation-level group commit: traversal steps per durable epoch.
  /// 1 (the default) keeps the strict libpmemobj-style per-step protocol
  /// bit-for-bit; K > 1 accumulates K steps into one epoch whose records
  /// are coalesced (overlapping/adjacent writes merged, repeated counter
  /// updates collapsed to their final value) and whose dirty 64 B lines
  /// are flushed once as contiguous runs with a single drain. Recovery
  /// resumes at the last committed epoch boundary, so a crash loses at
  /// most the K-1 steps of the open epoch.
  uint32_t commit_interval = 1;

  /// Test hook: simulate a power failure (discard unflushed lines) after
  /// this many traversal steps; 0 disables. The run then fails with
  /// Internal("injected crash").
  uint64_t crash_after_traversal_steps = 0;

  /// Test hook: crash during the initialization phase.
  bool crash_in_init = false;

  /// DRAM budget (bytes) for the decoded-rule cache; 0 disables it. When
  /// enabled, decoded rule/segment payloads are kept in a host-side LRU
  /// cache: a hit replays the payload's device extents against a DRAM
  /// cost profile (sharing the run's SimClock) instead of re-reading NVM.
  /// With the default 0 the simulated costs are bit-identical to a build
  /// without the cache.
  uint64_t dram_cache_bytes = 0;

  /// Bound on scoped repairs (re-derive + remap of damaged blocks) within
  /// one Run before escalating to a salvage restart.
  uint32_t max_scoped_repairs = 8;

  /// Bound on full salvage restarts (fresh init from the compressed
  /// container) within one Run.
  uint32_t max_salvage_restarts = 2;

  /// When repair and salvage are both exhausted (or disabled), complete
  /// the query in degraded mode instead of failing: unreadable media
  /// contributes nothing and RunInfo::completeness reports the fraction
  /// of traversal steps that saw clean media.
  bool allow_degraded = false;

  // ---- Concurrent serving (src/serve) ----

  /// Per-query simulated-time budget in nanoseconds (0 = unlimited),
  /// measured on the run's SimClock from Run() entry. Repair and salvage
  /// attempts count against the same budget. When it expires, the run
  /// stops at the next cancellation point (every traversal step plus the
  /// init estimator loops) and returns DeadlineExceeded — the session
  /// fails, never the engine or its siblings.
  uint64_t deadline_sim_ns = 0;

  /// Cooperative cancellation flag, polled at the same points as the
  /// deadline; may be flipped from another thread (the scheduler's
  /// load-shedding path). Null = never cancelled. A cancelled run also
  /// returns DeadlineExceeded.
  const std::atomic<bool>* cancel = nullptr;

  /// Decoded-rule cache shared by concurrent sessions over one sealed
  /// pool. Overrides dram_cache_bytes when set: hits replay against a
  /// DRAM model on *this session's* clock, so siblings never pay for each
  /// other's lookups. Entries survive across sessions (the sealed payload
  /// layout is deterministic) and are invalidated on any repair/salvage.
  std::shared_ptr<SharedRuleCache> shared_cache;

  /// Task-independent init prefix of the sealed pool this session's
  /// device image was cloned from (see RunAndCapturePrefix). Lets every
  /// session skip the container load, DAG rebuild and estimator reads,
  /// like RunBatch's cross-task reuse but across engines. Ignored when a
  /// RunBatch-local prefix exists or the prefix does not match this
  /// engine's corpus/options.
  std::shared_ptr<const SealedPrefix> sealed_prefix;

  /// Generation of the durable container this engine's image was sealed
  /// from (ContainerStore::generation(); 0 = not container-backed). Part
  /// of the sealed-prefix reuse key: a prefix captured before an append
  /// mutated the container can never be served against the post-append
  /// generation, even though corpus pointer and options may match.
  uint64_t container_generation = 0;

  /// Pool-level repair lock shared by concurrent sessions. Scoped
  /// repair, salvage formatting and attach-path repair serialize on it,
  /// so at most one session rewrites (its private copy of) pool state at
  /// a time while the others keep reading; null = no serving, no lock.
  /// Lock order: always acquired *before* any SharedRuleCache lock
  /// (repair paths invalidate the cache while holding it; lookups never
  /// take the repair lock), so the pair cannot deadlock.
  std::shared_ptr<util::Mutex> repair_lock;

  // ---- Tiered placement (src/nvm/tiered_pool.h) ----

  /// Multi-tier placement configuration. When set, the engine reserves
  /// a placement region at the pool end, registers every structure
  /// class with a session TieredPool, routes all device charges through
  /// the resident tier's cost model, and (when config->migrate) runs an
  /// online migration tick every config->migrate_interval traversal
  /// steps. Null (the default) leaves the device charging exactly as
  /// before — the hot path pays one null check.
  std::shared_ptr<const nvm::TierConfig> tiering;
};

/// Aggregate accounting of one run, beyond RunMetrics.
struct NTadocRunInfo {
  PruneStats prune;
  uint64_t pool_used_bytes = 0;
  uint64_t traversal_steps = 0;
  bool init_phase_reused = false;  // recovery skipped a completed init
  uint64_t counter_rebuilds = 0;   // no-summation ablation: table rebuilds
  uint64_t redo_logged_bytes = 0;  // operation-level write amplification
  uint64_t resumed_at_step = 0;    // operation-level recovery resume point
  uint64_t group_checkpoints = 0;  // full-log home flushes + truncations

  // Media-fault accounting (see DESIGN.md "Fault model").
  uint64_t corruption_detected = 0;  // corrupt persisted state found
  uint64_t salvage_restarts = 0;     // full restarts from the container
  uint64_t blocks_lost = 0;          // unrepairable blocks (pre-salvage)
  uint64_t transient_retries = 0;    // device retries absorbed this run
  uint64_t blocks_remapped = 0;      // bad blocks moved to spare media
  uint64_t scoped_repairs = 0;       // objects re-derived in place
  uint64_t degraded_queries = 0;     // 1 if this run completed degraded
  double completeness = 1.0;         // fraction of clean traversal steps

  // Decoded-rule DRAM cache (options.dram_cache_bytes > 0).
  uint64_t rule_cache_hits = 0;
  uint64_t rule_cache_misses = 0;

  // Epoch group commit (operation-level, commit_interval > 1).
  uint64_t epoch_commits = 0;       // durable epoch transactions
  uint64_t coalesced_records = 0;   // log records saved by write merging
  uint64_t coalesced_flush_lines = 0;  // duplicate line flushes avoided
  uint64_t batch_init_reuses = 0;   // RunBatch tasks that skipped init work

  // Tiered placement (options.tiering != nullptr).
  uint64_t promotions = 0;        // units moved to a faster tier
  uint64_t demotions = 0;         // units moved to a slower tier
  uint64_t migration_epochs = 0;  // migration ticks that committed moves
  /// Registered bytes resident per medium (MediumKind order:
  /// dram, nvm, ssd, hdd) at the end of the run.
  std::array<uint64_t, 4> tier_resident_bytes{};
};

/// The N-TADOC engine. One engine instance owns the layout of one device
/// (phase marker, optional redo log, DAG pool) and can re-attach to a
/// device that already holds a persisted run (crash recovery).
class NTadocEngine {
 public:
  /// `corpus` and `device` must outlive the engine.
  NTadocEngine(const CompressedCorpus* corpus, nvm::NvmDevice* device,
               NTadocOptions options = NTadocOptions());
  ~NTadocEngine();

  NTadocEngine(const NTadocEngine&) = delete;
  NTadocEngine& operator=(const NTadocEngine&) = delete;

  /// Runs one analytics task end to end, including recovery: if the
  /// device holds a matching persisted run (same task/options signature),
  /// completed phases are reused; with operation-level persistence the
  /// traversal resumes at the last durable step.
  Result<AnalyticsOutput> Run(Task task, const AnalyticsOptions& opts = {},
                              RunMetrics* metrics = nullptr);

  /// Runs several tasks back to back, paying the initialization phase's
  /// dominant costs once: the first task performs a full init; later
  /// tasks reuse the sealed DAG pool prefix (pruned payloads, rule/
  /// segment metadata, local n-gram lists) plus the host-side estimator
  /// scratch, re-running only per-task work (table/list allocation at
  /// the task's bounds, catalog + integrity reseal). Each task still
  /// produces its own output/metrics; `metrics`, when non-null, is
  /// resized to tasks.size(). Salvage or repair invalidates the shared
  /// prefix, so the next task falls back to a full init.
  Result<std::vector<AnalyticsOutput>> RunBatch(
      std::span<const Task> tasks, const AnalyticsOptions& opts = {},
      std::vector<RunMetrics>* metrics = nullptr);

  /// Runs `task` like Run() while capturing the task-independent init
  /// prefix. On success `*prefix` receives an immutable handle that any
  /// number of later engines can consume via NTadocOptions::sealed_prefix
  /// — each paired with a clone of this device's image as its
  /// DeviceOptions::base_image (the sealed pool). serve::SealPool wraps
  /// this.
  Result<AnalyticsOutput> RunAndCapturePrefix(
      Task task, const AnalyticsOptions& opts,
      std::shared_ptr<const SealedPrefix>* prefix,
      RunMetrics* metrics = nullptr);

  /// Accounting for the most recent Run().
  const NTadocRunInfo& run_info() const;

  /// Resolves kAuto for a task (mirrors the DRAM engine's policy).
  TraversalStrategy ResolveStrategy(Task task) const;

  /// Device extent of the pruned payload region from the engine's current
  /// state ({0, 0} before the first init). Tests use it to aim media
  /// faults at re-derivable data.
  std::pair<uint64_t, uint64_t> payload_region() const;

 private:
  struct State;        // pool-resident structure handles + host scratch
  struct RuleCache;    // decoded-payload DRAM cache (engine.cc)
  struct BatchShared;  // cross-task init state for RunBatch (engine.cc)
  // All per-run mutable state — cursors, RunInfo counters, degraded/
  // repair flags, cache handles, deadline — lives here rather than in
  // engine-wide members, so one engine instance is exactly one session
  // and N engines over clones of one sealed image share nothing mutable
  // except the explicitly thread-safe SharedRuleCache / repair lock.
  struct SessionContext;

  friend class SealedPrefix;
  friend class SharedRuleCache;

  // Phase 1: build (or re-attach) all pool structures for `task`. With
  // `force_fresh` the attach path is skipped (salvage restart after
  // detected corruption).
  Status InitPhase(Task task, const AnalyticsOptions& opts, State* st,
                   bool force_fresh);

  // Attempts to re-attach to a persisted, signature-matching run. Returns
  // true on success; false means "no matching state, do a fresh init"
  // (not an error). Detected corruption is counted in run_info_ and also
  // falls back to fresh init, except for damage that only a restart can
  // clear, which is returned as DataLoss.
  Result<bool> TryAttach(State* st, uint64_t pool_base);

  // Phase 2 dispatchers.
  Result<AnalyticsOutput> TraversalPhase(Task task,
                                         const AnalyticsOptions& opts,
                                         State* st);
  Result<AnalyticsOutput> TopDownGlobal(Task task,
                                        const AnalyticsOptions& opts,
                                        State* st);
  Result<AnalyticsOutput> TopDownPerFile(Task task,
                                         const AnalyticsOptions& opts,
                                         State* st);
  Result<AnalyticsOutput> BottomUp(Task task, const AnalyticsOptions& opts,
                                   State* st);

  // Scoped repair: re-derives the contents of each damaged block from the
  // compressed container (payloads, local n-gram lists) or resets it
  // (mutable traversal state), then remaps the media. Returns false when
  // any block cannot be repaired — the caller escalates to salvage.
  bool RepairDamage(State* st,
                    const std::vector<nvm::NvmPool::Damage>& damage);

  // Mid-run repair entry point: scrubs the pool and repairs in place so
  // the interrupted traversal can resume instead of restarting.
  bool TryScopedRepair();

  // Persistence helpers.
  void CommitPhase(uint64_t phase);
  Status StepCommit(State* st);  // operation-level: commit current txn
  Status MaybeInjectCrash(State* st);

  // DataLoss if any read since the last call hit an unreadable block
  // (the data the caller just consumed is poison, not real).
  Status CheckMediaErrors();

  // Cooperative cancellation point: DeadlineExceeded once the session's
  // sim-clock budget expired or its cancel flag was flipped. Polled at
  // every traversal step and inside the init estimator loops.
  Status CheckSessionLimits() const;

  // Drops decoded-rule cache entries (private and shared) after a
  // repair/salvage rewrote pool payloads under the cached offsets.
  void InvalidateRuleCaches();

  // Tiered placement (options_.tiering != nullptr; no-ops otherwise).
  // SetupTiering runs at the end of every init (fresh or attach):
  // formats/loads the placement region, registers the run's structure
  // extents with the session TieredPool, and applies initial placement.
  Status SetupTiering(State* st, uint64_t catalog_off, bool fresh);
  // Per-traversal-step migration hook, called after each step's commit
  // point; invalidates decoded-rule caches when a payload unit was
  // demoted (their admission costs were measured against the old tier).
  Status MaybeMigrate(State* st);

  // Decoded-payload reads routed through the DRAM cache when enabled
  // (straight device reads otherwise). `segment` selects segment vs rule.
  DecodedPayload ReadPayloadCached(State* st, bool segment, uint32_t id);

  const CompressedCorpus* corpus_;
  nvm::NvmDevice* device_;
  NTadocOptions options_;
  std::unique_ptr<SessionContext> ses_;
};

/// Thread-safe decoded-rule DRAM cache shared by concurrent sessions over
/// one sealed pool (NTadocOptions::shared_cache). The sealed payload
/// layout is deterministic, so an entry decoded by one session is valid
/// for every sibling; the hit replay is charged to the *looking-up*
/// session's clock through its own DRAM model. Repair or salvage in any
/// session invalidates the cache (the only cross-session effect repairs
/// are allowed to have).
class SharedRuleCache {
 public:
  /// `budget_bytes` bounds the decoded payloads held in host memory.
  explicit SharedRuleCache(uint64_t budget_bytes);
  ~SharedRuleCache();

  SharedRuleCache(const SharedRuleCache&) = delete;
  SharedRuleCache& operator=(const SharedRuleCache&) = delete;

  /// Drops every entry and the cross-query reuse history. Engines call
  /// this after any repair/salvage; tests use it to observe invalidation.
  void Invalidate() NTADOC_EXCLUDES(mu_);

  /// Number of cached payloads right now.
  uint64_t entries() const NTADOC_EXCLUDES(mu_);

  /// Invalidations performed so far (repair-triggered plus explicit).
  uint64_t invalidations() const NTADOC_EXCLUDES(mu_);

 private:
  friend class NTadocEngine;
  mutable util::Mutex mu_;
  // The cache_ handle itself is set once in the constructor; the
  // pointed-to LRU state is what every session mutates under mu_.
  std::unique_ptr<NTadocEngine::RuleCache> cache_ NTADOC_PT_GUARDED_BY(mu_);
  uint64_t invalidations_ NTADOC_GUARDED_BY(mu_) = 0;
};

/// Immutable capture of the task-independent init prefix of a sealed
/// pool: the pruned DAG layout, prune stats, estimator scratch and (when
/// sealed by a sequence task) the local n-gram region. Produced by
/// NTadocEngine::RunAndCapturePrefix, consumed read-only by any number of
/// concurrent engines whose devices were cloned from the same sealed
/// image.
class SealedPrefix {
 public:
  ~SealedPrefix();

  SealedPrefix(const SealedPrefix&) = delete;
  SealedPrefix& operator=(const SealedPrefix&) = delete;

  /// Simulated cost of the shared init work this prefix replaces (see
  /// RunMetrics::shared_init_sim_ns).
  uint64_t shared_init_sim_ns() const { return shared_init_sim_ns_; }

 private:
  friend class NTadocEngine;
  SealedPrefix();
  const CompressedCorpus* corpus_ = nullptr;
  bool pruned_ = true;
  // Pool layout depends on the sealing engine's persistence mode (marker
  // region, redo-log reservation, spare blocks); a consuming session must
  // match it exactly or fall back to a full init.
  PersistenceMode persistence_ = PersistenceMode::kPhase;
  uint64_t redo_log_bytes_ = 0;
  // Container generation the sealing engine was bound to; a session over
  // a different generation of the same corpus must not reuse the prefix.
  uint64_t container_generation_ = 0;
  uint64_t shared_init_sim_ns_ = 0;
  std::unique_ptr<NTadocEngine::BatchShared> shared_;
};

}  // namespace ntadoc::core

#endif  // NTADOC_CORE_ENGINE_H_
